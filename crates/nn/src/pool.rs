//! Global pooling operations (the Ω bank of the LandPooling layer).
//!
//! DiagNet flattens a variable number of landmarks into a fixed-size vector
//! by applying a *bank* of commutative pooling functions element-wise over
//! the per-landmark convolution outputs (paper §III-C, Table I):
//! `Ω = {min, max, avg, variance, p10, …, p90}`.
//!
//! Every operation here has an exact sub-gradient used during training:
//!
//! * `min` / `max` route the gradient to the arg-extremum (first on ties),
//! * `avg` spreads it uniformly,
//! * `variance` uses `∂/∂vⱼ = 2(vⱼ − μ)/ℓ`,
//! * percentiles linearly interpolate between two order statistics, and the
//!   gradient splits between those two elements with the interpolation
//!   weights.

use serde::{Deserialize, Serialize};

/// One global pooling operation over a set of per-landmark values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolOp {
    /// Minimum over landmarks.
    Min,
    /// Maximum over landmarks.
    Max,
    /// Arithmetic mean over landmarks.
    Avg,
    /// Population variance over landmarks.
    Var,
    /// Linear-interpolated percentile (0 ..= 100).
    Percentile(u8),
}

impl PoolOp {
    /// The paper's Ω bank: min, max, avg, variance and the nine deciles
    /// p10 … p90 — 13 operations in total.
    pub fn standard_bank() -> Vec<PoolOp> {
        let mut ops = vec![PoolOp::Min, PoolOp::Max, PoolOp::Avg, PoolOp::Var];
        for p in (10..=90).step_by(10) {
            ops.push(PoolOp::Percentile(p as u8));
        }
        ops
    }

    /// A minimal bank used by ablation benchmarks.
    pub fn minimal_bank() -> Vec<PoolOp> {
        vec![PoolOp::Avg]
    }

    /// A medium bank used by ablation benchmarks.
    pub fn small_bank() -> Vec<PoolOp> {
        vec![PoolOp::Min, PoolOp::Max, PoolOp::Avg]
    }

    /// Short human-readable name (for bench and experiment output).
    pub fn name(&self) -> String {
        match self {
            PoolOp::Min => "min".into(),
            PoolOp::Max => "max".into(),
            PoolOp::Avg => "avg".into(),
            PoolOp::Var => "var".into(),
            PoolOp::Percentile(p) => format!("p{p}"),
        }
    }
}

/// Reusable scratch space for pooling (avoids per-call allocation in the
/// training hot loop).
#[derive(Debug, Default)]
pub struct PoolScratch {
    sorted: Vec<usize>,
}

impl PoolScratch {
    /// Sort indices of `values` ascending. `sort_unstable_by` never
    /// allocates (unlike the stable merge sort), which keeps the
    /// steady-state forward pass allocation-free; ties break by index
    /// because `0..len` is generated in order and pdqsort is deterministic
    /// for a fixed input, so pooling results stay reproducible.
    fn sort_for(&mut self, values: &[f32]) {
        self.sorted.clear();
        self.sorted.extend(0..values.len());
        self.sorted.sort_unstable_by(|&a, &b| {
            values[a]
                .partial_cmp(&values[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
}

/// Per-call pooling facts captured by [`pool_forward_capture`] and
/// replayed by [`pool_backward_cached`]: the mean and the arg-extrema of
/// one value set. The sorted order is captured separately (it is a slice,
/// not a scalar). Replaying these instead of recomputing them halves the
/// backward pass's work per (row, filter) site; the values are produced by
/// exactly the loops the backward pass would run, so replay is
/// bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Arithmetic mean of the value set (Avg/Var backward).
    pub mean: f32,
    /// Index of the first strict minimum (Min backward routing).
    pub argmin: u32,
    /// Index of the first strict maximum (Max backward routing).
    pub argmax: u32,
}

/// The two order statistics and weights a percentile interpolates between.
#[inline]
fn percentile_anchors(len: usize, p: u8) -> (usize, usize, f32) {
    debug_assert!(len > 0);
    let rank = (p as f32 / 100.0) * (len - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    (lo, hi, rank - lo as f32)
}

/// Applies every op in `ops` to `values`, writing one output per op.
///
/// # Panics
/// Panics if `values` is empty or `out.len() != ops.len()`.
pub fn pool_forward(values: &[f32], ops: &[PoolOp], out: &mut [f32], scratch: &mut PoolScratch) {
    assert!(!values.is_empty(), "pool_forward: empty value set");
    assert_eq!(
        out.len(),
        ops.len(),
        "pool_forward: out length != ops length"
    );
    let needs_sort = ops.iter().any(|op| matches!(op, PoolOp::Percentile(_)));
    if needs_sort {
        scratch.sort_for(values);
    }
    let len = values.len();
    let mean = values.iter().sum::<f32>() / len as f32;
    for (o, op) in out.iter_mut().zip(ops) {
        *o = match op {
            PoolOp::Min => values.iter().copied().fold(f32::INFINITY, f32::min),
            PoolOp::Max => values.iter().copied().fold(f32::NEG_INFINITY, f32::max),
            PoolOp::Avg => mean,
            PoolOp::Var => values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / len as f32,
            PoolOp::Percentile(p) => {
                let (lo, hi, frac) = percentile_anchors(len, *p);
                let vlo = values[scratch.sorted[lo]];
                let vhi = values[scratch.sorted[hi]];
                vlo * (1.0 - frac) + vhi * frac
            }
        };
    }
}

/// Like [`pool_forward`], but additionally records everything the backward
/// pass needs: the sorted order into `order_out` (written only when the
/// bank contains a percentile; `order_out` must hold `values.len()`
/// entries) and the mean/arg-extrema as the returned [`PoolStats`].
/// Outputs are bit-identical to `pool_forward`'s — the extremum *values*
/// still come from the same `fold`s, and the arg-extremum scans are the
/// exact loops [`pool_backward`] runs.
///
/// # Panics
/// Panics if `values` is empty, `out.len() != ops.len()`, or
/// `order_out.len() != values.len()`.
// lint: no_alloc
pub fn pool_forward_capture(
    values: &[f32],
    ops: &[PoolOp],
    out: &mut [f32],
    scratch: &mut PoolScratch,
    order_out: &mut [u32],
) -> PoolStats {
    assert_eq!(
        order_out.len(),
        values.len(),
        "pool_forward_capture: order_out length mismatch"
    );
    pool_forward(values, ops, out, scratch);
    if ops.iter().any(|op| matches!(op, PoolOp::Percentile(_))) {
        for (o, &s) in order_out.iter_mut().zip(&scratch.sorted) {
            *o = s as u32;
        }
    }
    let mut stats = PoolStats {
        mean: values.iter().sum::<f32>() / values.len() as f32,
        argmin: 0,
        argmax: 0,
    };
    if ops.iter().any(|op| matches!(op, PoolOp::Min | PoolOp::Max)) {
        let (mut amin, mut amax) = (0usize, 0usize);
        for (i, &v) in values.iter().enumerate().skip(1) {
            if v < values[amin] {
                amin = i;
            }
            if v > values[amax] {
                amax = i;
            }
        }
        stats.argmin = amin as u32;
        stats.argmax = amax as u32;
    }
    stats
}

/// Accumulates `∂L/∂values` given `∂L/∂out` (one scalar per op).
///
/// Gradients are **added** into `grad_values`, so the caller can fold
/// multiple filters into one buffer.
///
/// # Panics
/// Panics if `values` is empty, or if `grad_out.len() != ops.len()`, or if
/// `grad_values.len() != values.len()`.
pub fn pool_backward(
    values: &[f32],
    ops: &[PoolOp],
    grad_out: &[f32],
    grad_values: &mut [f32],
    scratch: &mut PoolScratch,
) {
    assert!(!values.is_empty(), "pool_backward: empty value set");
    assert_eq!(
        grad_out.len(),
        ops.len(),
        "pool_backward: grad_out length != ops length"
    );
    assert_eq!(
        grad_values.len(),
        values.len(),
        "pool_backward: grad_values length mismatch"
    );
    let needs_sort = ops.iter().any(|op| matches!(op, PoolOp::Percentile(_)));
    if needs_sort {
        scratch.sort_for(values);
    }
    let len = values.len();
    let mean = values.iter().sum::<f32>() / len as f32;
    for (op, &g) in ops.iter().zip(grad_out) {
        if g == 0.0 {
            continue;
        }
        match op {
            PoolOp::Min => {
                let mut arg = 0;
                for (i, &v) in values.iter().enumerate().skip(1) {
                    if v < values[arg] {
                        arg = i;
                    }
                }
                grad_values[arg] += g;
            }
            PoolOp::Max => {
                let mut arg = 0;
                for (i, &v) in values.iter().enumerate().skip(1) {
                    if v > values[arg] {
                        arg = i;
                    }
                }
                grad_values[arg] += g;
            }
            PoolOp::Avg => {
                let share = g / len as f32;
                for gv in grad_values.iter_mut() {
                    *gv += share;
                }
            }
            PoolOp::Var => {
                let scale = 2.0 * g / len as f32;
                for (gv, &v) in grad_values.iter_mut().zip(values) {
                    *gv += scale * (v - mean);
                }
            }
            PoolOp::Percentile(p) => {
                let (lo, hi, frac) = percentile_anchors(len, *p);
                grad_values[scratch.sorted[lo]] += g * (1.0 - frac);
                if hi != lo {
                    grad_values[scratch.sorted[hi]] += g * frac;
                }
            }
        }
    }
}

/// [`pool_backward`] with the sort, mean and arg-extremum scans replaced
/// by the facts [`pool_forward_capture`] recorded: `order` is the captured
/// sorted order (read only when the bank contains a percentile) and
/// `stats` the captured mean/arg-extrema. Gradients are **added** into
/// `grad_values` and are bit-identical to `pool_backward`'s — the capture
/// ran the same deterministic sort and scans over the same values.
///
/// # Panics
/// Panics if `values` is empty, `grad_out.len() != ops.len()`,
/// `grad_values.len() != values.len()`, or `order` is shorter than
/// `values` while a percentile op needs it.
// lint: no_alloc
pub fn pool_backward_cached(
    values: &[f32],
    ops: &[PoolOp],
    grad_out: &[f32],
    grad_values: &mut [f32],
    order: &[u32],
    stats: PoolStats,
) {
    assert!(!values.is_empty(), "pool_backward_cached: empty value set");
    assert_eq!(
        grad_out.len(),
        ops.len(),
        "pool_backward_cached: grad_out length != ops length"
    );
    assert_eq!(
        grad_values.len(),
        values.len(),
        "pool_backward_cached: grad_values length mismatch"
    );
    let len = values.len();
    for (op, &g) in ops.iter().zip(grad_out) {
        if g == 0.0 {
            continue;
        }
        match op {
            PoolOp::Min => grad_values[stats.argmin as usize] += g,
            PoolOp::Max => grad_values[stats.argmax as usize] += g,
            PoolOp::Avg => {
                let share = g / len as f32;
                for gv in grad_values.iter_mut() {
                    *gv += share;
                }
            }
            PoolOp::Var => {
                let scale = 2.0 * g / len as f32;
                for (gv, &v) in grad_values.iter_mut().zip(values) {
                    *gv += scale * (v - stats.mean);
                }
            }
            PoolOp::Percentile(p) => {
                let (lo, hi, frac) = percentile_anchors(len, *p);
                grad_values[order[lo] as usize] += g * (1.0 - frac);
                if hi != lo {
                    grad_values[order[hi] as usize] += g * frac;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_forward(values: &[f32], ops: &[PoolOp]) -> Vec<f32> {
        let mut out = vec![0.0; ops.len()];
        let mut scratch = PoolScratch::default();
        pool_forward(values, ops, &mut out, &mut scratch);
        out
    }

    #[test]
    fn standard_bank_has_thirteen_ops() {
        assert_eq!(PoolOp::standard_bank().len(), 13);
    }

    #[test]
    fn min_max_avg_values() {
        let out = run_forward(&[3.0, -1.0, 2.0], &[PoolOp::Min, PoolOp::Max, PoolOp::Avg]);
        assert_eq!(out, vec![-1.0, 3.0, 4.0 / 3.0]);
    }

    #[test]
    fn variance_population() {
        let out = run_forward(&[1.0, 3.0], &[PoolOp::Var]);
        assert!((out[0] - 1.0).abs() < 1e-6); // mean 2, deviations ±1
    }

    #[test]
    fn percentile_endpoints_match_min_max() {
        let vals = [5.0, 1.0, 9.0, 3.0];
        let out = run_forward(&vals, &[PoolOp::Percentile(0), PoolOp::Percentile(100)]);
        assert_eq!(out, vec![1.0, 9.0]);
    }

    #[test]
    fn median_of_even_set_interpolates() {
        let out = run_forward(&[1.0, 2.0, 3.0, 4.0], &[PoolOp::Percentile(50)]);
        assert!((out[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn single_value_all_ops_defined() {
        let ops = PoolOp::standard_bank();
        let out = run_forward(&[7.0], &ops);
        for (op, &v) in ops.iter().zip(&out) {
            match op {
                PoolOp::Var => assert_eq!(v, 0.0),
                _ => assert_eq!(v, 7.0, "op {:?}", op),
            }
        }
    }

    /// Central-difference check of every op's backward rule.
    #[test]
    fn gradients_match_finite_differences() {
        let ops = PoolOp::standard_bank();
        let values = [0.5f32, -1.2, 3.3, 0.9, 2.1];
        let mut scratch = PoolScratch::default();
        let eps = 1e-3f32;
        for (oi, op) in ops.iter().enumerate() {
            // Analytic gradient: dL/dout = 1 for this op only.
            let mut grad_out = vec![0.0; ops.len()];
            grad_out[oi] = 1.0;
            let mut analytic = vec![0.0f32; values.len()];
            pool_backward(&values, &ops, &grad_out, &mut analytic, &mut scratch);
            for j in 0..values.len() {
                let mut plus = values;
                plus[j] += eps;
                let mut minus = values;
                minus[j] -= eps;
                let mut out_p = vec![0.0; ops.len()];
                let mut out_m = vec![0.0; ops.len()];
                pool_forward(&plus, &ops, &mut out_p, &mut scratch);
                pool_forward(&minus, &ops, &mut out_m, &mut scratch);
                let numeric = (out_p[oi] - out_m[oi]) / (2.0 * eps);
                assert!(
                    (analytic[j] - numeric).abs() < 5e-3,
                    "op {:?} input {}: analytic {} vs numeric {}",
                    op,
                    j,
                    analytic[j],
                    numeric
                );
            }
        }
    }

    #[test]
    fn backward_accumulates() {
        let values = [1.0f32, 2.0];
        let mut scratch = PoolScratch::default();
        let mut grads = vec![1.0f32, 1.0];
        pool_backward(&values, &[PoolOp::Avg], &[2.0], &mut grads, &mut scratch);
        assert_eq!(grads, vec![2.0, 2.0]); // 1.0 pre-existing + 1.0 share
    }

    #[test]
    fn zero_upstream_gradient_is_noop() {
        let values = [1.0f32, 2.0, 3.0];
        let mut scratch = PoolScratch::default();
        let mut grads = vec![0.0f32; 3];
        pool_backward(
            &values,
            &PoolOp::standard_bank(),
            &[0.0; 13],
            &mut grads,
            &mut scratch,
        );
        assert!(grads.iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "empty value set")]
    fn forward_empty_panics() {
        let mut out = vec![0.0];
        pool_forward(&[], &[PoolOp::Avg], &mut out, &mut PoolScratch::default());
    }

    /// The capture/replay pair must be bit-identical to the recomputing
    /// pair, including through ties (the capture reuses the forward's
    /// deterministic sort, so tie routing cannot drift).
    #[test]
    fn cached_backward_matches_recomputing_backward_bitwise() {
        let ops = PoolOp::standard_bank();
        // Ties on purpose: equal values make percentile/extremum routing
        // depend on the captured order.
        let values = [2.0f32, -1.5, 2.0, 0.0, -1.5, 3.25, 0.0, 3.25];
        let mut scratch = PoolScratch::default();
        let mut out_a = vec![0.0; ops.len()];
        let mut out_b = vec![0.0; ops.len()];
        let mut order = vec![0u32; values.len()];
        pool_forward(&values, &ops, &mut out_a, &mut scratch);
        let stats = pool_forward_capture(&values, &ops, &mut out_b, &mut scratch, &mut order);
        assert_eq!(
            out_a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out_b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "capture changed the forward outputs"
        );
        let grad_out: Vec<f32> = (0..ops.len()).map(|i| (i as f32 - 4.0) * 0.3).collect();
        let mut grads_a = vec![0.0f32; values.len()];
        let mut grads_b = vec![0.0f32; values.len()];
        pool_backward(&values, &ops, &grad_out, &mut grads_a, &mut scratch);
        pool_backward_cached(&values, &ops, &grad_out, &mut grads_b, &order, stats);
        assert_eq!(
            grads_a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            grads_b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "cached backward drifted from the recomputing backward"
        );
    }
}
