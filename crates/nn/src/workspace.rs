//! Reusable forward/backward workspaces: the zero-allocation hot path.
//!
//! The allocating APIs (`Network::forward`, `Layer::forward_cached`, …)
//! create a fresh `Matrix` per layer per call, which makes the allocator
//! the bottleneck of both training epochs and high-throughput scoring. The
//! types here own every buffer those passes need — per-layer activations,
//! caches, pooling scratch and ping-pong gradient buffers — so a caller
//! creates them **once** per training run or scoring session and reuses
//! them across mini-batches and epochs. After the first pass at a given
//! batch size ("warm-up"), a forward pass performs zero heap allocations;
//! [`crate::tensor::Matrix::resize`] only adjusts lengths within existing
//! capacity.
//!
//! ```
//! use diagnet_nn::prelude::*;
//! use diagnet_nn::workspace::ForwardWorkspace;
//!
//! let net = Network::new(vec![Layer::dense(4, 8, 1), Layer::relu(), Layer::dense(8, 2, 2)]);
//! let mut ws = ForwardWorkspace::new(&net);
//! let x = Matrix::zeros(16, 4);
//! for _ in 0..3 {
//!     let logits = net.forward_ws(&x, &mut ws); // no allocation after the first pass
//!     assert_eq!(logits.cols(), 2);
//! }
//! ```

use crate::layer::{Layer, LayerCache};
use crate::network::Network;
use crate::pool::PoolScratch;
use crate::tensor::Matrix;

/// Per-task scratch for the LandPool pooling loops: one gathered filter
/// column, its gradient, the per-op outputs and the percentile sort
/// indices. Buffers grow to their steady-state size on first use and are
/// then reused verbatim.
#[derive(Debug, Default)]
pub struct PoolRowScratch {
    /// One filter's values across landmarks (length ℓ, forward only).
    pub(crate) col: Vec<f32>,
    /// Per-op outputs or upstream gradients (length `ops.len()`).
    pub(crate) op_out: Vec<f32>,
    /// One row's filter outputs transposed to `f × ℓ` (backward only):
    /// each filter's landmark column becomes a contiguous slice, so the
    /// pooling sub-gradients stream instead of striding.
    pub(crate) ft: Vec<f32>,
    /// Gradient w.r.t. `ft`, same `f × ℓ` layout (backward only).
    pub(crate) dft: Vec<f32>,
    /// Percentile sort indices.
    pub(crate) sort: PoolScratch,
}

/// Per-layer forward scratch owned by a [`ForwardWorkspace`].
#[derive(Debug)]
pub enum LayerScratch {
    /// Dense and ReLU need no scratch beyond the output buffer.
    None,
    /// LandPool scratch.
    LandPool {
        /// Gathered landmark blocks, `(batch·ℓ) × k`.
        xl: Matrix,
        /// One pooling scratch per parallel task.
        rows: Vec<PoolRowScratch>,
    },
}

impl LayerScratch {
    /// The scratch variant matching `layer`.
    pub fn for_layer(layer: &Layer) -> LayerScratch {
        match layer {
            Layer::LandPool(_) => LayerScratch::LandPool {
                xl: Matrix::zeros(0, 0),
                rows: Vec::new(),
            },
            _ => LayerScratch::None,
        }
    }
}

/// Owns everything a cached forward pass writes: one activation matrix and
/// one cache per layer, plus per-layer scratch. Created once per network
/// (shapes follow the data, so the same workspace serves any batch size).
#[derive(Debug)]
pub struct ForwardWorkspace {
    /// `activations[i]` is the output of layer `i` (the input matrix is
    /// *not* copied; callers pass it alongside the workspace).
    pub(crate) activations: Vec<Matrix>,
    /// Per-layer backward caches.
    pub(crate) caches: Vec<LayerCache>,
    /// Per-layer forward scratch.
    pub(crate) scratch: Vec<LayerScratch>,
}

impl ForwardWorkspace {
    /// An empty workspace shaped for `net`. Buffers are grown lazily by the
    /// first forward pass.
    pub fn new(net: &Network) -> Self {
        ForwardWorkspace {
            activations: net.layers.iter().map(|_| Matrix::zeros(0, 0)).collect(),
            caches: net.layers.iter().map(|_| LayerCache::None).collect(),
            scratch: net.layers.iter().map(LayerScratch::for_layer).collect(),
        }
    }

    /// The last forward pass's logits.
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("workspace: empty network")
    }

    /// Consume the workspace, keeping only the logits.
    pub fn into_output(mut self) -> Matrix {
        self.activations.pop().expect("workspace: empty network")
    }

    /// Output of layer `i` from the last forward pass.
    pub fn activation(&self, i: usize) -> &Matrix {
        &self.activations[i]
    }

    /// Number of layers this workspace was shaped for.
    pub fn num_layers(&self) -> usize {
        self.activations.len()
    }

    /// Whether this workspace was shaped for `net`'s architecture (layer
    /// count and per-layer scratch variants). Long-lived callers (e.g. a
    /// thread-local scoring workspace) use this to detect that the model
    /// behind them was swapped and rebuild instead of panicking inside a
    /// pass. Buffer *contents* are irrelevant: every pass overwrites them
    /// in full.
    pub fn matches(&self, net: &Network) -> bool {
        self.activations.len() == net.layers.len()
            && self
                .scratch
                .iter()
                .zip(&net.layers)
                .all(|(s, l)| match (s, l) {
                    (LayerScratch::LandPool { .. }, Layer::LandPool(_)) => true,
                    (LayerScratch::None, Layer::LandPool(_)) => false,
                    (LayerScratch::LandPool { .. }, _) => false,
                    (LayerScratch::None, _) => true,
                })
    }
}

/// Scratch buffers for `Layer::backward_into`, shared by every layer of a
/// network (sizes follow the largest layer; `Matrix::resize` keeps
/// capacity when shrinking).
#[derive(Debug, Default)]
pub struct BackwardScratch {
    /// Gathered landmark blocks, `(batch·ℓ) × k` (LandPool only).
    pub(crate) xl: Matrix,
    /// Gradient of every per-landmark filter output, `(batch·ℓ) × f`.
    pub(crate) df: Matrix,
    /// Gradient w.r.t. the gathered landmark blocks, `(batch·ℓ) × k`.
    pub(crate) dxl: Matrix,
    /// Transposed Dense weights (`in × out`), rebuilt per backward call so
    /// `dX = dY · Wᵀ` runs through the streaming [`crate::linalg::matmul_into`]
    /// kernel instead of the latency-bound dot-product form.
    pub(crate) wt: Matrix,
    /// One pooling scratch per parallel task.
    pub(crate) rows: Vec<PoolRowScratch>,
}

/// Owns the ping-pong gradient buffers of a backward pass. The caller
/// writes `∂L/∂logits` into [`BackwardWorkspace::grad_logits_mut`], runs
/// `Network::backward_ws`, and reads `∂L/∂input` back from
/// [`BackwardWorkspace::input_grad`] — two matrices serve the whole stack
/// because each layer consumes one and produces the other.
#[derive(Debug, Default)]
pub struct BackwardWorkspace {
    /// Holds `∂L/∂logits` before the pass and `∂L/∂input` after it.
    pub(crate) cur: Matrix,
    /// The other half of the ping-pong pair.
    pub(crate) next: Matrix,
    /// Layer scratch (LandPool DF/XL buffers).
    pub(crate) scratch: BackwardScratch,
}

impl BackwardWorkspace {
    /// An empty backward workspace (buffers grow lazily on first use).
    pub fn new(_net: &Network) -> Self {
        BackwardWorkspace::default()
    }

    /// Buffer the caller seeds with `∂L/∂logits` before `backward_ws`.
    pub fn grad_logits_mut(&mut self) -> &mut Matrix {
        &mut self.cur
    }

    /// Gradient w.r.t. the network input, valid after `backward_ws`.
    pub fn input_grad(&self) -> &Matrix {
        &self.cur
    }
}
