//! Re-export of the shared deterministic RNG crate.
//!
//! The simulator (`diagnet-sim`) and the learning stack share one RNG so
//! that seeds mean the same thing everywhere; see `diagnet-rng` for the
//! implementation and its tests.
pub use diagnet_rng::*;
