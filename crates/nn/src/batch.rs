//! Streaming row sources for bounded-memory training.
//!
//! [`BatchSource`] abstracts "where training rows come from" so
//! [`Trainer::fit_streaming`](crate::train::Trainer::fit_streaming) can
//! consume data that never exists as one epoch-sized [`Matrix`]: a
//! simulator generating chunks on the fly, a file reader, or — via
//! [`MatrixBatchSource`] — an ordinary in-memory `(x, y)` pair. Sources
//! append into caller-provided buffers, so the trainer controls peak
//! memory (its shuffle window) and the source allocates nothing per call.

use crate::tensor::Matrix;

/// A resettable, multi-pass producer of labelled feature rows.
///
/// Contract: a full pass yields exactly [`num_rows`](Self::num_rows) rows,
/// every row is [`width`](Self::width) features wide, and repeated passes
/// (after [`reset`](Self::reset)) yield identical rows in identical order.
/// The trainer re-reads the source once per epoch.
pub trait BatchSource {
    /// Total rows one full pass yields.
    fn num_rows(&self) -> usize;

    /// Feature width of every row.
    fn width(&self) -> usize;

    /// Rewind to the first row; the next pass must repeat the previous one.
    fn reset(&mut self);

    /// Append up to `limit` rows to `x` (row-major, `width()` values per
    /// row) and their labels to `y`. Returns the number of rows appended;
    /// `0` means the pass is exhausted. A source may append fewer than
    /// `limit` rows per call (e.g. one internal chunk at a time).
    fn next_rows(&mut self, limit: usize, x: &mut Vec<f32>, y: &mut Vec<usize>) -> usize;
}

/// [`BatchSource`] over an in-memory matrix and label slice: the
/// materialised training path re-expressed as a stream, used by adapters
/// and equivalence tests.
#[derive(Debug)]
pub struct MatrixBatchSource<'a> {
    x: &'a Matrix,
    y: &'a [usize],
    next: usize,
}

impl<'a> MatrixBatchSource<'a> {
    /// Stream `x`'s rows with labels `y` (lengths must match).
    pub fn new(x: &'a Matrix, y: &'a [usize]) -> Self {
        debug_assert_eq!(x.rows(), y.len());
        MatrixBatchSource { x, y, next: 0 }
    }
}

impl BatchSource for MatrixBatchSource<'_> {
    fn num_rows(&self) -> usize {
        self.x.rows()
    }

    fn width(&self) -> usize {
        self.x.cols()
    }

    fn reset(&mut self) {
        self.next = 0;
    }

    fn next_rows(&mut self, limit: usize, x: &mut Vec<f32>, y: &mut Vec<usize>) -> usize {
        let remaining = self.x.rows() - self.next;
        let take = remaining.min(limit);
        if take == 0 {
            return 0;
        }
        for r in self.next..self.next + take {
            x.extend_from_slice(self.x.row(r));
        }
        y.extend_from_slice(&self.y[self.next..self.next + take]);
        self.next += take;
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_source_streams_all_rows_in_order() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = vec![0usize, 1, 0];
        let mut src = MatrixBatchSource::new(&x, &y);
        assert_eq!(src.num_rows(), 3);
        assert_eq!(src.width(), 2);
        let mut bx = Vec::new();
        let mut by = Vec::new();
        assert_eq!(src.next_rows(2, &mut bx, &mut by), 2);
        assert_eq!(src.next_rows(2, &mut bx, &mut by), 1);
        assert_eq!(src.next_rows(2, &mut bx, &mut by), 0);
        assert_eq!(bx, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(by, y);
        src.reset();
        let mut again = Vec::new();
        let mut ly = Vec::new();
        assert_eq!(src.next_rows(usize::MAX, &mut again, &mut ly), 3);
        assert_eq!(again, bx);
    }
}
