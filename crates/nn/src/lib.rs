//! # diagnet-nn — a minimal dense neural-network framework
//!
//! This crate is the deep-learning substrate of the DiagNet reproduction
//! (Bonniot, Neumann, Taïani — IPDPS 2021). The paper used TensorFlow 1.13;
//! the Rust ecosystem has no equivalent offline, so this crate implements
//! from scratch everything DiagNet's inference model needs:
//!
//! * a row-major `f32` [`tensor::Matrix`] type with
//!   rayon-parallelised matrix products ([`linalg`]),
//! * dense layers, ReLU non-linearities and the paper's **LandPooling**
//!   layer (non-overlapping convolution over per-landmark feature blocks
//!   followed by a bank of global pooling operations, §III-C of the paper),
//! * reverse-mode backpropagation through entire networks, including the
//!   **gradient with respect to the input features** that DiagNet's
//!   attention mechanism requires (§III-E),
//! * stochastic gradient descent with Nesterov momentum and learning-rate
//!   decay (the optimiser of the paper's Table I),
//! * a training loop with mini-batching, shuffling, validation splits and
//!   early stopping, recording per-epoch losses (used to regenerate the
//!   paper's Fig. 9),
//! * layer freezing, used by the general → specialised transfer procedure
//!   of §IV-F,
//! * JSON (de)serialisation of trained models.
//!
//! Everything is deterministic given a seed: parallel code paths never
//! change results, only wall-clock time.
//!
//! ## Quick example
//!
//! ```
//! use diagnet_nn::prelude::*;
//!
//! // Learn XOR with a tiny MLP.
//! let x = Matrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0],
//! ]);
//! let y = vec![0usize, 1, 1, 0];
//! let mut net = Network::new(vec![
//!     Layer::dense(2, 8, 1),
//!     Layer::relu(),
//!     Layer::dense(8, 2, 2),
//! ]);
//! let cfg = TrainConfig { epochs: 400, batch_size: 4, ..TrainConfig::default() };
//! let mut trainer = Trainer::new(cfg, SgdNesterov::new(0.3, 0.9, 0.0));
//! trainer.fit(&mut net, &x, &y, None, 7).unwrap();
//! let probs = net.predict_proba(&x);
//! assert!(probs.get(0, 0) > 0.5 && probs.get(1, 1) > 0.5);
//! ```

pub mod batch;
pub mod error;
pub mod init;
pub mod layer;
pub mod linalg;
pub mod loss;
pub mod network;
pub mod optim;
pub mod pool;
pub mod rng;
pub mod serialize;
pub mod tensor;
pub mod train;
pub mod workspace;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::batch::{BatchSource, MatrixBatchSource};
    pub use crate::layer::{Layer, LayerCache};
    pub use crate::loss::{softmax_cross_entropy, softmax_in_place};
    pub use crate::network::{Gradients, Network};
    pub use crate::optim::{Optimizer, SgdNesterov};
    pub use crate::pool::PoolOp;
    pub use crate::tensor::Matrix;
    pub use crate::train::{TrainConfig, TrainHistory, Trainer};
    pub use crate::workspace::{BackwardWorkspace, ForwardWorkspace};
}

pub use error::NnError;
pub use prelude::*;
