//! Model persistence (JSON via serde).
//!
//! JSON keeps the format human-inspectable and diff-able; DiagNet models are
//! small (≈200k parameters), so compactness is not a concern.

use crate::error::NnError;
use crate::network::Network;
use std::io::{Read, Write};
use std::path::Path;

/// Serialise a network to a writer as JSON.
pub fn save_network<W: Write>(net: &Network, writer: W) -> Result<(), NnError> {
    serde_json::to_writer(writer, net).map_err(|e| NnError::Serialization(e.to_string()))
}

/// Deserialise a network from a reader.
pub fn load_network<R: Read>(reader: R) -> Result<Network, NnError> {
    serde_json::from_reader(reader).map_err(|e| NnError::Serialization(e.to_string()))
}

/// Serialise a network to a file path.
pub fn save_network_to_path<P: AsRef<Path>>(net: &Network, path: P) -> Result<(), NnError> {
    let file = std::fs::File::create(path).map_err(|e| NnError::Serialization(e.to_string()))?;
    save_network(net, std::io::BufWriter::new(file))
}

/// Deserialise a network from a file path.
pub fn load_network_from_path<P: AsRef<Path>>(path: P) -> Result<Network, NnError> {
    let file = std::fs::File::open(path).map_err(|e| NnError::Serialization(e.to_string()))?;
    load_network(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::pool::PoolOp;
    use crate::tensor::Matrix;

    fn sample_net() -> Network {
        Network::new(vec![
            Layer::land_pool(4, 3, 2, PoolOp::standard_bank(), 1),
            Layer::dense(4 * 13 + 2, 8, 2),
            Layer::relu(),
            Layer::dense(8, 3, 3),
        ])
    }

    #[test]
    fn round_trip_preserves_network() {
        let net = sample_net();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let loaded = load_network(buf.as_slice()).unwrap();
        assert_eq!(net, loaded);
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let net = sample_net();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let loaded = load_network(buf.as_slice()).unwrap();
        let x = Matrix::full(2, 5 * 3 + 2, 0.5);
        assert!(net.forward(&x).max_abs_diff(&loaded.forward(&x)) == 0.0);
    }

    #[test]
    fn file_round_trip() {
        let net = sample_net();
        let dir = std::env::temp_dir().join("diagnet_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_network_to_path(&net, &path).unwrap();
        let loaded = load_network_from_path(&path).unwrap();
        assert_eq!(net, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_input_is_error_not_panic() {
        assert!(load_network(&b"not json"[..]).is_err());
        assert!(load_network(&br#"{"layers": "nope"}"#[..]).is_err());
    }

    #[test]
    fn missing_file_is_error() {
        assert!(load_network_from_path("/nonexistent/diagnet/model.json").is_err());
    }
}
