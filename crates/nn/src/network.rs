//! Networks: layer stacks with forward, backward and input-gradient passes.

use crate::error::NnError;
use crate::layer::{Layer, LayerCache, LayerGrads};
use crate::loss::{softmax, softmax_cross_entropy_weighted, softmax_cross_entropy_weighted_into};
use crate::tensor::Matrix;
use crate::workspace::{BackwardWorkspace, ForwardWorkspace};
use serde::{Deserialize, Serialize};

/// Parameter gradients for a whole network, mirroring its layer structure.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// One gradient holder per layer (`LayerGrads::None` for ReLU etc.).
    pub layers: Vec<LayerGrads>,
}

impl Gradients {
    /// All-zero gradients shaped like `net`.
    pub fn zeros_like(net: &Network) -> Self {
        Gradients {
            layers: net.layers.iter().map(Layer::zero_grads).collect(),
        }
    }

    /// Reset to zero, keeping allocations.
    pub fn zero(&mut self) {
        for g in &mut self.layers {
            match g {
                LayerGrads::None => {}
                LayerGrads::Dense { dw, db } | LayerGrads::LandPool { dk: dw, db } => {
                    dw.fill_zero();
                    db.iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }
    }
}

/// A feed-forward network. The final layer produces **logits**; call
/// [`Network::predict_proba`] for softmax probabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Ordered layers, input to output.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Build a network from layers.
    ///
    /// # Panics
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "Network::new: need at least one layer");
        Network { layers }
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// True when every parameter of every layer is finite — see
    /// [`Layer::params_finite`].
    pub fn params_finite(&self) -> bool {
        self.layers.iter().all(Layer::params_finite)
    }

    /// Number of parameters in non-frozen layers.
    pub fn num_trainable_params(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| !l.is_frozen())
            .map(|l| l.num_params())
            .sum()
    }

    /// Forward pass to logits. Allocating wrapper around
    /// [`Network::forward_ws`]; callers on the hot path should hold a
    /// [`ForwardWorkspace`] and call that directly.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut ws = ForwardWorkspace::new(self);
        self.forward_ws(x, &mut ws);
        ws.into_output()
    }

    /// Cached forward pass into a reusable workspace; returns the logits
    /// (also available as `ws.output()`). Performs zero heap allocations
    /// once `ws` has warmed up at the current batch size.
    // lint: no_alloc
    pub fn forward_ws<'w>(&self, x: &Matrix, ws: &'w mut ForwardWorkspace) -> &'w Matrix {
        assert_eq!(
            ws.num_layers(),
            self.layers.len(),
            "forward_ws: workspace shaped for a different network"
        );
        for (i, layer) in self.layers.iter().enumerate() {
            let (done, rest) = ws.activations.split_at_mut(i);
            let input = if i == 0 { x } else { &done[i - 1] };
            layer.forward_cached_into(input, &mut rest[0], &mut ws.caches[i], &mut ws.scratch[i]);
        }
        ws.output()
    }

    /// Backward pass through the state left in `fws` by
    /// [`Network::forward_ws`] on the same `x`. On entry
    /// `bws.grad_logits_mut()` must hold `∂L/∂logits`; on exit
    /// `bws.input_grad()` holds `∂L/∂x`. Parameter gradients are
    /// accumulated into `grads` when provided.
    // lint: no_alloc
    pub fn backward_ws(
        &self,
        x: &Matrix,
        fws: &ForwardWorkspace,
        grads: Option<&mut Gradients>,
        bws: &mut BackwardWorkspace,
    ) {
        assert_eq!(
            fws.num_layers(),
            self.layers.len(),
            "backward_ws: workspace shaped for a different network"
        );
        if let Some(gs) = &grads {
            assert_eq!(
                gs.layers.len(),
                self.layers.len(),
                "backward_ws: gradient holder mismatch"
            );
        }
        let mut gs = grads;
        for i in (0..self.layers.len()).rev() {
            let input = if i == 0 { x } else { &fws.activations[i - 1] };
            let layer_grads = gs.as_deref_mut().map(|g| &mut g.layers[i]);
            self.layers[i].backward_into(
                input,
                &fws.caches[i],
                &bws.cur,
                &mut bws.next,
                layer_grads,
                &mut bws.scratch,
            );
            std::mem::swap(&mut bws.cur, &mut bws.next);
        }
    }

    /// Workspace-based [`Network::loss_gradients_weighted`]: forward,
    /// softmax cross-entropy, backward, all through reusable buffers.
    /// Returns the mean loss; parameter gradients are accumulated into
    /// `grads`.
    pub fn loss_gradients_weighted_ws(
        &self,
        x: &Matrix,
        targets: &[usize],
        class_weights: Option<&[f32]>,
        grads: &mut Gradients,
        fws: &mut ForwardWorkspace,
        bws: &mut BackwardWorkspace,
    ) -> f32 {
        self.forward_ws(x, fws);
        let loss = softmax_cross_entropy_weighted_into(
            fws.output(),
            targets,
            class_weights,
            bws.grad_logits_mut(),
        );
        self.backward_ws(x, fws, Some(grads), bws);
        loss
    }

    /// Forward pass returning softmax probabilities, one row per sample.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        softmax(&self.forward(x))
    }

    /// Predicted class per sample (argmax of logits).
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward(x);
        (0..logits.rows()).map(|i| logits.argmax_row(i)).collect()
    }

    /// Training forward pass: returns all activations (`len = layers + 1`,
    /// `activations[0] = x`) and per-layer caches.
    pub fn forward_all(&self, x: &Matrix) -> (Vec<Matrix>, Vec<LayerCache>) {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        let mut caches = Vec::with_capacity(self.layers.len());
        activations.push(x.clone());
        for layer in &self.layers {
            let (out, cache) = layer.forward_cached(activations.last().expect("non-empty"));
            activations.push(out);
            caches.push(cache);
        }
        (activations, caches)
    }

    /// Backward pass from `grad_logits` (gradient w.r.t. the final layer's
    /// output). Accumulates parameter gradients into `grads` and returns the
    /// gradient w.r.t. the network input.
    pub fn backward(
        &self,
        activations: &[Matrix],
        caches: &[LayerCache],
        grad_logits: Matrix,
        grads: Option<&mut Gradients>,
    ) -> Matrix {
        assert_eq!(
            activations.len(),
            self.layers.len() + 1,
            "backward: activation count mismatch"
        );
        assert_eq!(
            caches.len(),
            self.layers.len(),
            "backward: cache count mismatch"
        );
        let mut grad = grad_logits;
        match grads {
            Some(gs) => {
                assert_eq!(
                    gs.layers.len(),
                    self.layers.len(),
                    "backward: gradient holder mismatch"
                );
                for (i, layer) in self.layers.iter().enumerate().rev() {
                    grad =
                        layer.backward(&activations[i], &caches[i], &grad, Some(&mut gs.layers[i]));
                }
            }
            None => {
                for (i, layer) in self.layers.iter().enumerate().rev() {
                    grad = layer.backward(&activations[i], &caches[i], &grad, None);
                }
            }
        }
        grad
    }

    /// One full training step's gradient computation: forward, softmax
    /// cross-entropy against `targets`, backward. Returns the mean loss.
    pub fn loss_gradients(&self, x: &Matrix, targets: &[usize], grads: &mut Gradients) -> f32 {
        self.loss_gradients_weighted(x, targets, None, grads)
    }

    /// [`Network::loss_gradients`] with optional per-class loss weights.
    pub fn loss_gradients_weighted(
        &self,
        x: &Matrix,
        targets: &[usize],
        class_weights: Option<&[f32]>,
        grads: &mut Gradients,
    ) -> f32 {
        let (activations, caches) = self.forward_all(x);
        let logits = activations.last().expect("non-empty");
        let (loss, grad_logits) = softmax_cross_entropy_weighted(logits, targets, class_weights);
        self.backward(&activations, &caches, grad_logits, Some(grads));
        loss
    }

    /// Gradient of an arbitrary output-space gradient w.r.t. the **input
    /// features**, without touching parameters. `make_grad` receives the
    /// logits and must return `∂L/∂logits`. This is the primitive behind
    /// DiagNet's attention mechanism (§III-E). Allocating wrapper around
    /// [`Network::input_gradient_ws`].
    pub fn input_gradient<F>(&self, x: &Matrix, make_grad: F) -> Matrix
    where
        F: FnOnce(&Matrix) -> Matrix,
    {
        let mut fws = ForwardWorkspace::new(self);
        let mut bws = BackwardWorkspace::new(self);
        self.input_gradient_ws(x, &mut fws, &mut bws, |logits, grad| {
            *grad = make_grad(logits);
        });
        bws.cur
    }

    /// Workspace-based [`Network::input_gradient`]: **one** cached forward
    /// pass serves both the caller's read of the logits and the backward —
    /// the allocating wrapper used to run the forward twice on the scoring
    /// path (`forward` for probabilities, then `forward_all` again here).
    /// `make_grad` receives the logits of this call's forward pass and
    /// writes `∂L/∂logits` into the provided buffer; on exit
    /// `bws.input_grad()` holds `∂L/∂x` and `fws.output()` still holds the
    /// logits (the backward only reads `fws`). Zero heap allocations once
    /// both workspaces are warm.
    // lint: no_alloc
    pub fn input_gradient_ws<F>(
        &self,
        x: &Matrix,
        fws: &mut ForwardWorkspace,
        bws: &mut BackwardWorkspace,
        make_grad: F,
    ) where
        F: FnOnce(&Matrix, &mut Matrix),
    {
        self.forward_ws(x, fws);
        make_grad(fws.output(), &mut bws.cur);
        self.backward_ws(x, fws, None, bws);
    }

    /// Output width produced for inputs of `in_dim` features; validates all
    /// intermediate widths.
    pub fn out_dim(&self, in_dim: usize) -> Result<usize, NnError> {
        let mut dim = in_dim;
        for (i, layer) in self.layers.iter().enumerate() {
            // `Layer::out_dim` panics on mismatch; convert to an error here
            // so callers can validate untrusted dimensions.
            let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| layer.out_dim(dim)));
            match ok {
                Ok(d) => dim = d,
                Err(_) => {
                    return Err(NnError::ShapeMismatch {
                        context: format!("layer {i}"),
                        expected: 0,
                        actual: dim,
                    })
                }
            }
        }
        Ok(dim)
    }

    /// Freeze every layer whose index is in `indices` (and thaw the rest).
    pub fn freeze_only(&mut self, indices: &[usize]) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.set_frozen(indices.contains(&i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolOp;
    use crate::rng::SplitMix64;

    fn tiny_net() -> Network {
        Network::new(vec![
            Layer::dense(4, 6, 1),
            Layer::relu(),
            Layer::dense(6, 3, 2),
        ])
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| rng.next_f32() * 2.0 - 1.0)
                .collect(),
        )
    }

    #[test]
    fn forward_shapes() {
        let net = tiny_net();
        let y = net.forward(&Matrix::zeros(5, 4));
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn predict_proba_rows_normalised() {
        let net = tiny_net();
        let p = net.predict_proba(&random_matrix(3, 4, 5));
        for r in 0..3 {
            assert!((p.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn out_dim_validates() {
        let net = tiny_net();
        assert_eq!(net.out_dim(4).unwrap(), 3);
        assert!(net.out_dim(7).is_err());
    }

    #[test]
    fn num_params_and_freezing() {
        let mut net = tiny_net();
        assert_eq!(net.num_params(), 4 * 6 + 6 + 6 * 3 + 3);
        assert_eq!(net.num_trainable_params(), net.num_params());
        net.freeze_only(&[0]);
        assert_eq!(net.num_trainable_params(), 6 * 3 + 3);
    }

    /// End-to-end gradient check through a realistic DiagNet-shaped stack
    /// (LandPool + MLP) against finite differences of the CE loss.
    #[test]
    fn full_network_gradcheck() {
        let net = Network::new(vec![
            Layer::land_pool(3, 2, 2, vec![PoolOp::Avg, PoolOp::Max], 3),
            Layer::dense(3 * 2 + 2, 5, 4),
            Layer::relu(),
            Layer::dense(5, 3, 5),
        ]);
        let x = random_matrix(3, 4 * 2 + 2, 7);
        let targets = [0usize, 2, 1];
        let mut grads = Gradients::zeros_like(&net);
        net.loss_gradients(&x, &targets, &mut grads);
        let loss_of = |n: &Network| {
            let logits = n.forward(&x);
            crate::loss::cross_entropy_loss(&logits, &targets)
        };
        let eps = 1e-2f32;
        // Spot-check dense weights of the first dense layer.
        let LayerGrads::Dense { dw, .. } = &grads.layers[1] else {
            panic!()
        };
        for (r, c) in [(0, 0), (3, 2), (7, 4)] {
            let mut np = net.clone();
            let mut nm = net.clone();
            let (Layer::Dense(dp), Layer::Dense(dm)) = (&mut np.layers[1], &mut nm.layers[1])
            else {
                panic!()
            };
            dp.w.set(r, c, dp.w.get(r, c) + eps);
            dm.w.set(r, c, dm.w.get(r, c) - eps);
            let num = (loss_of(&np) - loss_of(&nm)) / (2.0 * eps);
            assert!(
                (dw.get(r, c) - num).abs() < 1e-2,
                "dW({r},{c}): analytic {} vs numeric {}",
                dw.get(r, c),
                num
            );
        }
        // Spot-check the LandPool kernel.
        let LayerGrads::LandPool { dk, .. } = &grads.layers[0] else {
            panic!()
        };
        for (r, c) in [(0, 0), (2, 1)] {
            let mut np = net.clone();
            let mut nm = net.clone();
            let (Layer::LandPool(lp), Layer::LandPool(lm)) = (&mut np.layers[0], &mut nm.layers[0])
            else {
                panic!()
            };
            lp.kernel.set(r, c, lp.kernel.get(r, c) + eps);
            lm.kernel.set(r, c, lm.kernel.get(r, c) - eps);
            let num = (loss_of(&np) - loss_of(&nm)) / (2.0 * eps);
            assert!(
                (dk.get(r, c) - num).abs() < 1e-2,
                "dK({r},{c}): analytic {} vs numeric {}",
                dk.get(r, c),
                num
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let net = tiny_net();
        let x = random_matrix(1, 4, 11);
        let targets = [1usize];
        let gin = net.input_gradient(&x, |logits| {
            crate::loss::softmax_cross_entropy(logits, &targets).1
        });
        let loss_of = |x: &Matrix| crate::loss::cross_entropy_loss(&net.forward(x), &targets);
        let eps = 1e-2f32;
        for c in 0..4 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let num = (loss_of(&xp) - loss_of(&xm)) / (2.0 * eps);
            assert!((gin.get(0, c) - num).abs() < 1e-2);
        }
    }

    fn landpool_net() -> Network {
        Network::new(vec![
            Layer::land_pool(
                3,
                2,
                2,
                vec![PoolOp::Avg, PoolOp::Max, PoolOp::Percentile(50)],
                3,
            ),
            Layer::dense(3 * 3 + 2, 5, 4),
            Layer::relu(),
            Layer::dense(5, 3, 5),
        ])
    }

    /// The workspace path must be bit-identical to the allocating path —
    /// both route through the same `*_into` kernels.
    #[test]
    fn forward_ws_matches_allocating_forward() {
        use crate::workspace::ForwardWorkspace;
        let net = landpool_net();
        let mut ws = ForwardWorkspace::new(&net);
        for (batch, seed) in [(4usize, 21u64), (9, 22), (1, 23), (4, 24)] {
            let x = random_matrix(batch, 4 * 2 + 2, seed);
            let expected = net.forward(&x);
            let got = net.forward_ws(&x, &mut ws);
            assert_eq!(got, &expected, "batch {batch}");
        }
    }

    #[test]
    fn loss_gradients_ws_matches_allocating() {
        use crate::workspace::{BackwardWorkspace, ForwardWorkspace};
        let net = landpool_net();
        let x = random_matrix(6, 4 * 2 + 2, 31);
        let targets = [0usize, 2, 1, 1, 0, 2];
        let mut grads_ref = Gradients::zeros_like(&net);
        let loss_ref = net.loss_gradients(&x, &targets, &mut grads_ref);
        let mut grads_ws = Gradients::zeros_like(&net);
        let mut fws = ForwardWorkspace::new(&net);
        let mut bws = BackwardWorkspace::new(&net);
        // Run twice through the same workspaces: the second pass reuses
        // warm buffers and must still agree exactly.
        for _ in 0..2 {
            grads_ws.zero();
            let loss_ws = net.loss_gradients_weighted_ws(
                &x,
                &targets,
                None,
                &mut grads_ws,
                &mut fws,
                &mut bws,
            );
            assert_eq!(loss_ref, loss_ws);
            for (a, b) in grads_ref.layers.iter().zip(&grads_ws.layers) {
                match (a, b) {
                    (LayerGrads::None, LayerGrads::None) => {}
                    (LayerGrads::Dense { dw, db }, LayerGrads::Dense { dw: ow, db: ob })
                    | (
                        LayerGrads::LandPool { dk: dw, db },
                        LayerGrads::LandPool { dk: ow, db: ob },
                    ) => {
                        assert_eq!(dw, ow);
                        assert_eq!(db, ob);
                    }
                    _ => panic!("variant mismatch"),
                }
            }
        }
    }

    #[test]
    fn backward_ws_input_grad_matches_input_gradient() {
        use crate::workspace::{BackwardWorkspace, ForwardWorkspace};
        let net = tiny_net();
        let x = random_matrix(3, 4, 41);
        let targets = [1usize, 0, 2];
        let expected = net.input_gradient(&x, |logits| {
            crate::loss::softmax_cross_entropy(logits, &targets).1
        });
        let mut fws = ForwardWorkspace::new(&net);
        let mut bws = BackwardWorkspace::new(&net);
        net.forward_ws(&x, &mut fws);
        let (_, grad_logits) = crate::loss::softmax_cross_entropy(fws.output(), &targets);
        bws.grad_logits_mut().copy_from(&grad_logits);
        net.backward_ws(&x, &fws, None, &mut bws);
        assert_eq!(bws.input_grad(), &expected);
    }

    #[test]
    fn gradients_zero_resets() {
        let net = tiny_net();
        let mut grads = Gradients::zeros_like(&net);
        net.loss_gradients(&random_matrix(4, 4, 13), &[0, 1, 2, 0], &mut grads);
        let LayerGrads::Dense { dw, .. } = &grads.layers[0] else {
            panic!()
        };
        assert!(dw.norm() > 0.0);
        grads.zero();
        let LayerGrads::Dense { dw, .. } = &grads.layers[0] else {
            panic!()
        };
        assert_eq!(dw.norm(), 0.0);
    }
}
