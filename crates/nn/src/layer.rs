//! Network layers: dense, ReLU and the paper's LandPooling layer.
//!
//! Layers are a closed enum rather than trait objects: the DiagNet
//! architecture is fixed and small, the enum serialises cleanly with serde,
//! and match-based dispatch lets the compiler inline the hot paths.

use crate::init;
use crate::linalg::{
    add_bias, column_sums_acc, matmul_at_acc, matmul_bt_into, matmul_into, transpose_into,
};
use crate::pool::{pool_backward_cached, pool_forward_capture, PoolOp, PoolStats};
use crate::tensor::Matrix;
use crate::workspace::{BackwardScratch, LayerScratch, PoolRowScratch};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Batch rows per parallel pooling task.
const POOL_ROWS_PER_TASK: usize = 8;
/// Total pooled values (`batch·ℓ·f`) above which the pooling loops run in
/// parallel. Rows are independent and tasks write disjoint output chunks,
/// so the parallel and serial paths produce identical results.
const POOL_PAR_VALUES: usize = 4096;

/// Copy the landmark prefix (`ℓ·k` values) of every row of `x` into `xl`,
/// shaped `(batch·ℓ) × k`, skipping the trailing local features. This is
/// the gather that lets one GEMM convolve the whole batch.
fn gather_landmarks(x: &Matrix, ell: usize, k: usize, xl: &mut Matrix) {
    let (batch, width) = (x.rows(), x.cols());
    xl.resize(batch * ell, k);
    let xd = x.data();
    let xld = xl.data_mut();
    for r in 0..batch {
        xld[r * ell * k..(r + 1) * ell * k].copy_from_slice(&xd[r * width..r * width + ell * k]);
    }
}

/// A fully-connected layer: `y = x · W + b` with `W ∈ R^{in × out}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weights, stored `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias, length `out_dim`.
    pub b: Vec<f32>,
    /// Frozen layers are skipped by the optimiser (used by the paper's
    /// general → specialised transfer, §IV-F).
    pub frozen: bool,
}

/// The LandPooling layer (paper §III-C, Fig. 3).
///
/// The input row is `[x[1] … x[ℓ] | local]` where each `x[λ] ∈ R^k` holds
/// the `k` metrics measured against landmark `λ` and `local` holds the
/// client-side features. The layer applies a **shared** kernel
/// `K ∈ R^{f×k}` and bias `b ∈ R^f` to every landmark block
/// (`F[λ] = K·x[λ] + b` — a non-overlapping convolution), then flattens the
/// variable number of landmarks with a bank of global pooling operations Ω
/// applied per filter. Local features pass through unchanged.
///
/// Output layout: `[op₀(f₀) … op₀(f_{f-1}) | op₁(…) … | local]`, i.e.
/// `ops.len() × f + n_local` values — **independent of ℓ**, which is what
/// makes the model root-cause extensible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LandPool {
    /// Shared convolution kernel, `f × k`.
    pub kernel: Matrix,
    /// Shared bias, length `f`.
    pub bias: Vec<f32>,
    /// The Ω pooling bank.
    pub ops: Vec<PoolOp>,
    /// Number of metrics per landmark (k).
    pub k: usize,
    /// Number of trailing local features passed through unchanged.
    pub n_local: usize,
    /// Frozen layers are skipped by the optimiser.
    pub frozen: bool,
}

impl LandPool {
    /// Number of convolution filters (f).
    pub fn filters(&self) -> usize {
        self.kernel.rows()
    }

    /// Output width (independent of the number of landmarks).
    pub fn out_dim(&self) -> usize {
        self.ops.len() * self.filters() + self.n_local
    }

    /// Number of landmarks implied by an input of `width` features.
    ///
    /// # Panics
    /// Panics if `width` is not `ℓ·k + n_local` for a positive integer ℓ.
    pub fn landmarks_for_width(&self, width: usize) -> usize {
        assert!(
            width > self.n_local && (width - self.n_local).is_multiple_of(self.k),
            "LandPool: input width {} incompatible with k={} and {} local features",
            width,
            self.k,
            self.n_local
        );
        (width - self.n_local) / self.k
    }
}

/// Cached intermediate state produced by `forward_cached`, consumed by
/// `backward`.
#[derive(Debug, Clone)]
pub enum LayerCache {
    /// Layers whose backward pass only needs the input (Dense, ReLU).
    None,
    /// LandPooling caches the per-landmark convolution outputs: one `ℓ×f`
    /// matrix per batch row, flattened to `batch × (ℓ·f)`, plus the
    /// pooling facts (sorted orders, means, arg-extrema) the backward pass
    /// replays instead of recomputing.
    LandPool {
        /// Per-row convolution outputs, `batch × (ℓ·f)` (row-major λ-then-f).
        f_values: Matrix,
        /// Number of landmarks in this batch's input.
        ell: usize,
        /// Captured sorted order per (row, filter) site, `batch·f·ℓ`
        /// flat (written only when the op bank contains a percentile).
        order: Vec<u32>,
        /// Captured mean/arg-extrema per (row, filter) site, `batch·f`.
        stats: Vec<PoolStats>,
    },
}

/// Parameter gradients for one layer.
#[derive(Debug, Clone)]
pub enum LayerGrads {
    /// Parameter-free layer.
    None,
    /// Dense gradients.
    Dense {
        /// `∂L/∂W`, same shape as `Dense::w`.
        dw: Matrix,
        /// `∂L/∂b`.
        db: Vec<f32>,
    },
    /// LandPool gradients.
    LandPool {
        /// `∂L/∂K`, same shape as `LandPool::kernel`.
        dk: Matrix,
        /// `∂L/∂b`.
        db: Vec<f32>,
    },
}

impl LayerGrads {
    /// In-place accumulation (used when summing gradients across batches).
    pub fn add_assign(&mut self, other: &LayerGrads) {
        match (self, other) {
            (LayerGrads::None, LayerGrads::None) => {}
            (LayerGrads::Dense { dw, db }, LayerGrads::Dense { dw: ow, db: ob }) => {
                dw.add_assign(ow);
                for (a, b) in db.iter_mut().zip(ob) {
                    *a += b;
                }
            }
            (LayerGrads::LandPool { dk, db }, LayerGrads::LandPool { dk: ok, db: ob }) => {
                dk.add_assign(ok);
                for (a, b) in db.iter_mut().zip(ob) {
                    *a += b;
                }
            }
            _ => panic!("LayerGrads::add_assign: mismatched variants"),
        }
    }

    /// Scale all gradients (e.g. to average over a batch).
    pub fn scale(&mut self, factor: f32) {
        match self {
            LayerGrads::None => {}
            LayerGrads::Dense { dw, db } | LayerGrads::LandPool { dk: dw, db } => {
                dw.scale(factor);
                for b in db.iter_mut() {
                    *b *= factor;
                }
            }
        }
    }
}

/// A single network layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected layer.
    Dense(Dense),
    /// Element-wise rectified linear unit.
    ReLU,
    /// The DiagNet LandPooling layer.
    LandPool(LandPool),
}

impl Layer {
    /// A dense layer with He-initialised weights (suitable before ReLU).
    pub fn dense(in_dim: usize, out_dim: usize, seed: u64) -> Layer {
        Layer::Dense(Dense {
            w: init::he(in_dim, out_dim, in_dim, seed),
            b: vec![0.0; out_dim],
            frozen: false,
        })
    }

    /// A ReLU activation layer.
    pub fn relu() -> Layer {
        Layer::ReLU
    }

    /// A LandPooling layer with a Xavier-initialised shared kernel.
    pub fn land_pool(
        filters: usize,
        k: usize,
        n_local: usize,
        ops: Vec<PoolOp>,
        seed: u64,
    ) -> Layer {
        assert!(!ops.is_empty(), "land_pool: Ω bank must not be empty");
        assert!(k > 0, "land_pool: k must be positive");
        Layer::LandPool(LandPool {
            kernel: init::xavier(filters, k, k, filters, seed),
            bias: vec![0.0; filters],
            ops,
            k,
            n_local,
            frozen: false,
        })
    }

    /// Output width for an input of `in_dim` features.
    pub fn out_dim(&self, in_dim: usize) -> usize {
        match self {
            Layer::Dense(d) => {
                assert_eq!(
                    in_dim,
                    d.w.rows(),
                    "Dense layer expects {} inputs, got {in_dim}",
                    d.w.rows()
                );
                d.w.cols()
            }
            Layer::ReLU => in_dim,
            Layer::LandPool(lp) => {
                // Validates the width as a side effect.
                lp.landmarks_for_width(in_dim);
                lp.out_dim()
            }
        }
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Dense(d) => d.w.rows() * d.w.cols() + d.b.len(),
            Layer::ReLU => 0,
            Layer::LandPool(lp) => lp.kernel.rows() * lp.kernel.cols() + lp.bias.len(),
        }
    }

    /// True when every parameter of this layer is finite (no NaN/Inf) —
    /// the load-time/publish-time health check of corrupted or diverged
    /// models.
    pub fn params_finite(&self) -> bool {
        match self {
            Layer::Dense(d) => {
                d.w.data().iter().all(|v| v.is_finite()) && d.b.iter().all(|v| v.is_finite())
            }
            Layer::ReLU => true,
            Layer::LandPool(lp) => {
                lp.kernel.data().iter().all(|v| v.is_finite())
                    && lp.bias.iter().all(|v| v.is_finite())
            }
        }
    }

    /// Whether the optimiser should skip this layer.
    pub fn is_frozen(&self) -> bool {
        match self {
            Layer::Dense(d) => d.frozen,
            Layer::ReLU => true,
            Layer::LandPool(lp) => lp.frozen,
        }
    }

    /// Freeze or thaw this layer (no-op for parameter-free layers).
    pub fn set_frozen(&mut self, frozen: bool) {
        match self {
            Layer::Dense(d) => d.frozen = frozen,
            Layer::ReLU => {}
            Layer::LandPool(lp) => lp.frozen = frozen,
        }
    }

    /// An all-zero gradient holder matching this layer's parameters.
    pub fn zero_grads(&self) -> LayerGrads {
        match self {
            Layer::Dense(d) => LayerGrads::Dense {
                dw: Matrix::zeros(d.w.rows(), d.w.cols()),
                db: vec![0.0; d.b.len()],
            },
            Layer::ReLU => LayerGrads::None,
            Layer::LandPool(lp) => LayerGrads::LandPool {
                dk: Matrix::zeros(lp.kernel.rows(), lp.kernel.cols()),
                db: vec![0.0; lp.bias.len()],
            },
        }
    }

    /// Inference forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_cached(x).0
    }

    /// Training forward pass: also returns the cache `backward` needs.
    /// Allocating wrapper around [`Layer::forward_cached_into`].
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, LayerCache) {
        let mut out = Matrix::zeros(0, 0);
        let mut cache = LayerCache::None;
        let mut scratch = LayerScratch::for_layer(self);
        self.forward_cached_into(x, &mut out, &mut cache, &mut scratch);
        (out, cache)
    }

    /// Training forward pass into caller-owned buffers: `out` receives the
    /// activations, `cache` the state `backward_into` needs, and `scratch`
    /// (from [`crate::workspace::ForwardWorkspace`]) holds reusable
    /// intermediates. Allocation-free once the buffers reach steady-state
    /// capacity.
    pub fn forward_cached_into(
        &self,
        x: &Matrix,
        out: &mut Matrix,
        cache: &mut LayerCache,
        scratch: &mut LayerScratch,
    ) {
        match self {
            Layer::Dense(d) => {
                assert_eq!(x.cols(), d.w.rows(), "Dense forward: width mismatch");
                matmul_into(x, &d.w, out);
                add_bias(out, &d.b);
                *cache = LayerCache::None;
            }
            Layer::ReLU => {
                out.copy_from(x);
                for v in out.data_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                *cache = LayerCache::None;
            }
            Layer::LandPool(lp) => {
                let ell = lp.landmarks_for_width(x.cols());
                let (f, k) = (lp.filters(), lp.k);
                let n_ops = lp.ops.len();
                let land_width = n_ops * f;
                let out_width = land_width + lp.n_local;
                let (batch, in_width) = (x.rows(), x.cols());
                let LayerScratch::LandPool { xl, rows } = scratch else {
                    panic!("LandPool forward: scratch has wrong variant");
                };
                // One GEMM convolves the whole batch: gather every row's
                // landmark blocks, multiply by the shared kernel, add bias.
                gather_landmarks(x, ell, k, xl);
                if !matches!(cache, LayerCache::LandPool { .. }) {
                    *cache = LayerCache::LandPool {
                        f_values: Matrix::zeros(0, 0),
                        ell: 0,
                        order: Vec::new(),
                        stats: Vec::new(),
                    };
                }
                let LayerCache::LandPool {
                    f_values,
                    ell: cached_ell,
                    order,
                    stats,
                } = cache
                else {
                    unreachable!()
                };
                matmul_bt_into(xl, &lp.kernel, f_values); // (batch·ℓ) × f
                add_bias(f_values, &lp.bias);
                // Same data viewed as batch × (ℓ·f), row-major λ-then-f.
                f_values.resize(batch, ell * f);
                *cached_ell = ell;
                // The capture buffers are always sized (even when no op
                // needs the sorted order) so the chunked zips below never
                // run dry; unused entries are simply never read.
                order.resize(batch * f * ell, 0);
                stats.resize(batch * f, PoolStats::default());

                out.resize(batch, out_width);
                let pool_rows = |out_chunk: &mut [f32],
                                 f_chunk: &[f32],
                                 x_chunk: &[f32],
                                 order_chunk: &mut [u32],
                                 stats_chunk: &mut [PoolStats],
                                 rs: &mut PoolRowScratch| {
                    rs.op_out.resize(n_ops, 0.0);
                    for ((((out_row, frow), in_row), row_order), row_stats) in out_chunk
                        .chunks_exact_mut(out_width)
                        .zip(f_chunk.chunks_exact(ell * f))
                        .zip(x_chunk.chunks_exact(in_width))
                        .zip(order_chunk.chunks_exact_mut(f * ell))
                        .zip(stats_chunk.chunks_exact_mut(f))
                    {
                        for j in 0..f {
                            rs.col.clear();
                            rs.col.extend((0..ell).map(|lam| frow[lam * f + j]));
                            row_stats[j] = pool_forward_capture(
                                &rs.col,
                                &lp.ops,
                                &mut rs.op_out,
                                &mut rs.sort,
                                &mut row_order[j * ell..(j + 1) * ell],
                            );
                            for (oi, &v) in rs.op_out.iter().enumerate() {
                                out_row[oi * f + j] = v;
                            }
                        }
                        out_row[land_width..].copy_from_slice(&in_row[ell * k..]);
                    }
                };
                if batch * ell * f >= POOL_PAR_VALUES {
                    let n_tasks = batch.div_ceil(POOL_ROWS_PER_TASK);
                    if rows.len() < n_tasks {
                        rows.resize_with(n_tasks, PoolRowScratch::default);
                    }
                    out.data_mut()
                        .par_chunks_mut(POOL_ROWS_PER_TASK * out_width)
                        .zip(f_values.data().par_chunks(POOL_ROWS_PER_TASK * ell * f))
                        .zip(x.data().par_chunks(POOL_ROWS_PER_TASK * in_width))
                        .zip(order.par_chunks_mut(POOL_ROWS_PER_TASK * f * ell))
                        .zip(stats.par_chunks_mut(POOL_ROWS_PER_TASK * f))
                        .zip(rows[..n_tasks].par_iter_mut())
                        .for_each(|(((((oc, fc), xc), orc), stc), rs)| {
                            pool_rows(oc, fc, xc, orc, stc, rs)
                        });
                } else {
                    if rows.is_empty() {
                        rows.push(PoolRowScratch::default());
                    }
                    pool_rows(
                        out.data_mut(),
                        f_values.data(),
                        x.data(),
                        order,
                        stats,
                        &mut rows[0],
                    );
                }
            }
        }
    }

    /// Backward pass.
    ///
    /// `input` is the activation that was fed to `forward_cached`, `cache`
    /// its cache, `grad_out` the loss gradient w.r.t. this layer's output.
    /// Returns the gradient w.r.t. the input; if `grads` is `Some`,
    /// parameter gradients are **accumulated** into it. Allocating wrapper
    /// around [`Layer::backward_into`].
    pub fn backward(
        &self,
        input: &Matrix,
        cache: &LayerCache,
        grad_out: &Matrix,
        grads: Option<&mut LayerGrads>,
    ) -> Matrix {
        let mut grad_in = Matrix::zeros(0, 0);
        let mut scratch = BackwardScratch::default();
        self.backward_into(input, cache, grad_out, &mut grad_in, grads, &mut scratch);
        grad_in
    }

    /// Backward pass into caller-owned buffers: `grad_in` receives the
    /// gradient w.r.t. the input, `scratch` (from
    /// [`crate::workspace::BackwardWorkspace`]) holds the LandPool DF/XL
    /// intermediates. Allocation-free once buffers reach steady-state
    /// capacity, except for the gradient GEMMs' batch-partial parallel
    /// path.
    pub fn backward_into(
        &self,
        input: &Matrix,
        cache: &LayerCache,
        grad_out: &Matrix,
        grad_in: &mut Matrix,
        grads: Option<&mut LayerGrads>,
        scratch: &mut BackwardScratch,
    ) {
        match self {
            Layer::Dense(d) => {
                // dX = dY · Wᵀ. Materialising Wᵀ into scratch first costs
                // O(in·out) data movement but lets the O(batch·in·out)
                // product run through the streaming register-strip kernel
                // instead of matmul_bt_into's serially-dependent dot
                // products — the difference between FP-add latency and
                // FMA throughput. Both forms accumulate each element in
                // ascending-k order, so results are bit-identical.
                transpose_into(&d.w, &mut scratch.wt);
                matmul_into(grad_out, &scratch.wt, grad_in);
                if let Some(LayerGrads::Dense { dw, db }) = grads {
                    matmul_at_acc(input, grad_out, dw);
                    column_sums_acc(grad_out, db);
                } else if grads.is_some() {
                    panic!("Dense backward: gradient holder has wrong variant");
                }
            }
            Layer::ReLU => {
                grad_in.copy_from(grad_out);
                for (g, &x) in grad_in.data_mut().iter_mut().zip(input.data()) {
                    if x <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Layer::LandPool(lp) => {
                let LayerCache::LandPool {
                    f_values,
                    ell,
                    order,
                    stats,
                } = cache
                else {
                    panic!("LandPool backward: missing cache");
                };
                let ell = *ell;
                let (f, k) = (lp.filters(), lp.k);
                let n_ops = lp.ops.len();
                let land_width = n_ops * f;
                let (batch, in_width) = (input.rows(), input.cols());
                let gout_width = grad_out.cols();

                // 1. DF: gradient of every per-landmark filter output,
                //    built per row through the pooling sub-gradients and
                //    laid out `(batch·ℓ) × f` so the parameter and input
                //    gradients below are plain GEMMs over the whole batch.
                scratch.df.resize(batch * ell, f);
                let build_df = |df_chunk: &mut [f32],
                                f_chunk: &[f32],
                                g_chunk: &[f32],
                                order_chunk: &[u32],
                                stats_chunk: &[PoolStats],
                                rs: &mut PoolRowScratch| {
                    rs.op_out.resize(n_ops, 0.0);
                    rs.ft.resize(ell * f, 0.0);
                    rs.dft.resize(ell * f, 0.0);
                    for ((((df_row, frow), gout_row), row_order), row_stats) in df_chunk
                        .chunks_exact_mut(ell * f)
                        .zip(f_chunk.chunks_exact(ell * f))
                        .zip(g_chunk.chunks_exact(gout_width))
                        .zip(order_chunk.chunks_exact(f * ell))
                        .zip(stats_chunk.chunks_exact(f))
                    {
                        // Transpose the row's ℓ×f filter outputs to f×ℓ up
                        // front: every filter's landmark column becomes one
                        // contiguous slice, so the pooling sub-gradients
                        // stream over it instead of gathering stride-f
                        // elements per filter. Pure data movement — values
                        // and the per-op gradient order are unchanged.
                        for (lam, fr) in frow.chunks_exact(f).enumerate() {
                            for (j, &v) in fr.iter().enumerate() {
                                rs.ft[j * ell + lam] = v;
                            }
                        }
                        rs.dft.iter_mut().for_each(|g| *g = 0.0);
                        for j in 0..f {
                            for (oi, og) in rs.op_out.iter_mut().enumerate() {
                                *og = gout_row[oi * f + j];
                            }
                            // Replay the forward's captured sort/mean/
                            // arg-extrema instead of recomputing them —
                            // the single biggest cost of the serving
                            // backward, and bit-identical by construction.
                            pool_backward_cached(
                                &rs.ft[j * ell..(j + 1) * ell],
                                &lp.ops,
                                &rs.op_out,
                                &mut rs.dft[j * ell..(j + 1) * ell],
                                &row_order[j * ell..(j + 1) * ell],
                                row_stats[j],
                            );
                        }
                        // Scatter back to the ℓ-major layout the GEMMs
                        // below expect.
                        for (lam, dr) in df_row.chunks_exact_mut(f).enumerate() {
                            for (j, o) in dr.iter_mut().enumerate() {
                                *o = rs.dft[j * ell + lam];
                            }
                        }
                    }
                };
                if batch * ell * f >= POOL_PAR_VALUES {
                    let n_tasks = batch.div_ceil(POOL_ROWS_PER_TASK);
                    if scratch.rows.len() < n_tasks {
                        scratch.rows.resize_with(n_tasks, PoolRowScratch::default);
                    }
                    scratch
                        .df
                        .data_mut()
                        .par_chunks_mut(POOL_ROWS_PER_TASK * ell * f)
                        .zip(f_values.data().par_chunks(POOL_ROWS_PER_TASK * ell * f))
                        .zip(grad_out.data().par_chunks(POOL_ROWS_PER_TASK * gout_width))
                        .zip(order.par_chunks(POOL_ROWS_PER_TASK * f * ell))
                        .zip(stats.par_chunks(POOL_ROWS_PER_TASK * f))
                        .zip(scratch.rows[..n_tasks].par_iter_mut())
                        .for_each(|(((((dc, fc), gc), orc), stc), rs)| {
                            build_df(dc, fc, gc, orc, stc, rs)
                        });
                } else {
                    if scratch.rows.is_empty() {
                        scratch.rows.push(PoolRowScratch::default());
                    }
                    build_df(
                        scratch.df.data_mut(),
                        f_values.data(),
                        grad_out.data(),
                        order,
                        stats,
                        &mut scratch.rows[0],
                    );
                }

                // 2. Parameter gradients in two batched reductions:
                //    dK += DFᵀ · XL and db += column sums of DF.
                if let Some(LayerGrads::LandPool { dk, db }) = grads {
                    gather_landmarks(input, ell, k, &mut scratch.xl);
                    matmul_at_acc(&scratch.df, &scratch.xl, dk);
                    column_sums_acc(&scratch.df, db);
                } else if grads.is_some() {
                    panic!("LandPool backward: gradient holder has wrong variant");
                }

                // 3. dXL = DF · K, scattered back to the landmark prefix of
                //    each input row; local features pass straight through.
                matmul_into(&scratch.df, &lp.kernel, &mut scratch.dxl);
                grad_in.resize(batch, in_width);
                let gind = grad_in.data_mut();
                let dxld = scratch.dxl.data();
                let goutd = grad_out.data();
                for r in 0..batch {
                    let gin_row = &mut gind[r * in_width..(r + 1) * in_width];
                    gin_row[..ell * k].copy_from_slice(&dxld[r * ell * k..(r + 1) * ell * k]);
                    let gout_row = &goutd[r * gout_width..(r + 1) * gout_width];
                    gin_row[ell * k..].copy_from_slice(&gout_row[land_width..]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * cols)
            .map(|_| rng.next_f32() * 2.0 - 1.0)
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn dense_forward_shapes_and_bias() {
        let mut layer = Layer::dense(3, 2, 1);
        if let Layer::Dense(d) = &mut layer {
            d.b = vec![1.0, -1.0];
        }
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        assert_eq!(y.row(0), &[1.0, -1.0]); // zero input → bias only
    }

    #[test]
    fn relu_clamps_negative() {
        let x = Matrix::from_rows(&[vec![-1.0, 0.0, 2.0]]);
        let y = Layer::relu().forward(&x);
        assert_eq!(y.row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let x = Matrix::from_rows(&[vec![-1.0, 0.5]]);
        let layer = Layer::relu();
        let (_, cache) = layer.forward_cached(&x);
        let g = Matrix::from_rows(&[vec![3.0, 3.0]]);
        let gi = layer.backward(&x, &cache, &g, None);
        assert_eq!(gi.row(0), &[0.0, 3.0]);
    }

    #[test]
    fn landpool_output_width_independent_of_landmarks() {
        let layer = Layer::land_pool(4, 3, 2, PoolOp::small_bank(), 2);
        let x5 = Matrix::zeros(1, 5 * 3 + 2);
        let x9 = Matrix::zeros(1, 9 * 3 + 2);
        assert_eq!(layer.forward(&x5).cols(), 3 * 4 + 2);
        assert_eq!(layer.forward(&x9).cols(), 3 * 4 + 2);
    }

    #[test]
    fn landpool_local_passthrough() {
        let layer = Layer::land_pool(2, 2, 3, vec![PoolOp::Avg], 3);
        let mut x = Matrix::zeros(1, 2 * 2 + 3);
        x.row_mut(0)[4..].copy_from_slice(&[7.0, 8.0, 9.0]);
        let y = layer.forward(&x);
        assert_eq!(&y.row(0)[2..], &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn landpool_permutation_invariant_over_landmarks() {
        // Pooling is commutative: permuting landmark blocks must not change
        // the output. This is the heart of root-cause extensibility.
        let layer = Layer::land_pool(5, 4, 2, PoolOp::standard_bank(), 7);
        let mut rng = SplitMix64::new(99);
        let blocks: Vec<Vec<f32>> = (0..6)
            .map(|_| (0..4).map(|_| rng.next_f32()).collect())
            .collect();
        let local = [0.3f32, -0.4];
        let build = |order: &[usize]| {
            let mut row = Vec::new();
            for &i in order {
                row.extend_from_slice(&blocks[i]);
            }
            row.extend_from_slice(&local);
            Matrix::from_row(row)
        };
        let y1 = layer.forward(&build(&[0, 1, 2, 3, 4, 5]));
        let y2 = layer.forward(&build(&[5, 3, 1, 0, 4, 2]));
        assert!(y1.max_abs_diff(&y2) < 1e-5);
    }

    /// Finite-difference check of the full LandPool backward pass:
    /// input gradients, kernel gradients and bias gradients.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn landpool_gradcheck() {
        let layer = Layer::land_pool(3, 2, 2, vec![PoolOp::Avg, PoolOp::Max, PoolOp::Var], 11);
        let x = random_matrix(2, 4 * 2 + 2, 13);
        let (y, cache) = layer.forward_cached(&x);
        // Loss = sum of outputs → grad_out = ones.
        let gout = Matrix::full(y.rows(), y.cols(), 1.0);
        let mut grads = layer.zero_grads();
        let gin = layer.backward(&x, &cache, &gout, Some(&mut grads));
        let loss = |l: &Layer, x: &Matrix| -> f32 { l.forward(x).data().iter().sum() };
        let eps = 1e-2f32;
        // Input gradients.
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
                assert!(
                    (gin.get(r, c) - num).abs() < 2e-2,
                    "input grad ({r},{c}): {} vs {}",
                    gin.get(r, c),
                    num
                );
            }
        }
        // Kernel and bias gradients.
        let LayerGrads::LandPool { dk, db } = &grads else {
            unreachable!()
        };
        let Layer::LandPool(lp) = &layer else {
            unreachable!()
        };
        for j in 0..lp.kernel.rows() {
            for c in 0..lp.kernel.cols() {
                let mut lp_p = lp.clone();
                lp_p.kernel.set(j, c, lp.kernel.get(j, c) + eps);
                let mut lp_m = lp.clone();
                lp_m.kernel.set(j, c, lp.kernel.get(j, c) - eps);
                let num = (loss(&Layer::LandPool(lp_p), &x) - loss(&Layer::LandPool(lp_m), &x))
                    / (2.0 * eps);
                assert!(
                    (dk.get(j, c) - num).abs() < 5e-2,
                    "kernel grad ({j},{c}): {} vs {}",
                    dk.get(j, c),
                    num
                );
            }
            let mut lp_p = lp.clone();
            lp_p.bias[j] += eps;
            let mut lp_m = lp.clone();
            lp_m.bias[j] -= eps;
            let num =
                (loss(&Layer::LandPool(lp_p), &x) - loss(&Layer::LandPool(lp_m), &x)) / (2.0 * eps);
            assert!(
                (db[j] - num).abs() < 5e-2,
                "bias grad {j}: {} vs {}",
                db[j],
                num
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn dense_gradcheck() {
        let layer = Layer::dense(3, 2, 17);
        let x = random_matrix(4, 3, 19);
        let (y, cache) = layer.forward_cached(&x);
        let gout = Matrix::full(y.rows(), y.cols(), 1.0);
        let mut grads = layer.zero_grads();
        let gin = layer.backward(&x, &cache, &gout, Some(&mut grads));
        let loss = |l: &Layer, x: &Matrix| -> f32 { l.forward(x).data().iter().sum() };
        let eps = 1e-2f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
                assert!((gin.get(r, c) - num).abs() < 1e-2);
            }
        }
        let LayerGrads::Dense { dw, db } = &grads else {
            unreachable!()
        };
        let Layer::Dense(d) = &layer else {
            unreachable!()
        };
        for r in 0..d.w.rows() {
            for c in 0..d.w.cols() {
                let mut dp = d.clone();
                dp.w.set(r, c, d.w.get(r, c) + eps);
                let mut dm = d.clone();
                dm.w.set(r, c, d.w.get(r, c) - eps);
                let num = (loss(&Layer::Dense(dp), &x) - loss(&Layer::Dense(dm), &x)) / (2.0 * eps);
                assert!((dw.get(r, c) - num).abs() < 2e-2);
            }
        }
        for j in 0..d.b.len() {
            let mut dp = d.clone();
            dp.b[j] += eps;
            let mut dm = d.clone();
            dm.b[j] -= eps;
            let num = (loss(&Layer::Dense(dp), &x) - loss(&Layer::Dense(dm), &x)) / (2.0 * eps);
            assert!((db[j] - num).abs() < 2e-2);
        }
    }

    #[test]
    fn freeze_flags() {
        let mut layer = Layer::dense(2, 2, 21);
        assert!(!layer.is_frozen());
        layer.set_frozen(true);
        assert!(layer.is_frozen());
        assert!(
            Layer::relu().is_frozen(),
            "parameter-free layers report frozen"
        );
    }

    #[test]
    fn param_counts() {
        assert_eq!(Layer::dense(317, 512, 1).num_params(), 317 * 512 + 512);
        assert_eq!(Layer::relu().num_params(), 0);
        assert_eq!(
            Layer::land_pool(24, 5, 5, PoolOp::standard_bank(), 1).num_params(),
            24 * 5 + 24
        );
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn landpool_rejects_bad_width() {
        let layer = Layer::land_pool(2, 3, 1, vec![PoolOp::Avg], 1);
        layer.forward(&Matrix::zeros(1, 9)); // (9-1) % 3 != 0
    }
}
