//! Softmax and cross-entropy utilities.

use crate::tensor::Matrix;

/// Numerically stable row-wise softmax, in place.
// lint: no_alloc
pub fn softmax_in_place(x: &mut Matrix) {
    let cols = x.cols();
    for row in x.data_mut().chunks_exact_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Row-wise softmax into a fresh matrix.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut probs = logits.clone();
    softmax_in_place(&mut probs);
    probs
}

/// Floor applied inside `log` to keep the loss finite when a probability
/// underflows to zero.
const LOG_FLOOR: f32 = 1e-12;

/// Mean softmax cross-entropy between `logits` (`n × c`) and integer class
/// `targets` (length `n`). Returns `(mean_loss, grad)` where `grad` is
/// `∂L/∂logits = (softmax(logits) − onehot) / n` — ready to backpropagate.
///
/// # Panics
/// Panics if `targets.len() != logits.rows()` or any target is `>= c`.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    softmax_cross_entropy_weighted(logits, targets, None)
}

/// Class-weighted softmax cross-entropy: sample `i` contributes with
/// weight `weights[targets[i]]`. Used to counter the heavy
/// nominal-vs-faulty imbalance of the paper's dataset (213k nominal vs
/// 30k faulty split over six fault families).
///
/// # Panics
/// Panics on inconsistent shapes or a target out of range.
pub fn softmax_cross_entropy_weighted(
    logits: &Matrix,
    targets: &[usize],
    weights: Option<&[f32]>,
) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(0, 0);
    let loss = softmax_cross_entropy_weighted_into(logits, targets, weights, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy_weighted`] writing the gradient into a
/// caller-provided buffer (resized as needed) — the hot-path flavour used
/// by `Network::loss_gradients_weighted_ws`; allocation-free once `grad`
/// has steady-state capacity.
///
/// # Panics
/// Panics on inconsistent shapes or a target out of range.
// lint: no_alloc
pub fn softmax_cross_entropy_weighted_into(
    logits: &Matrix,
    targets: &[usize],
    weights: Option<&[f32]>,
    grad: &mut Matrix,
) -> f32 {
    assert_eq!(
        targets.len(),
        logits.rows(),
        "softmax_cross_entropy: target count mismatch"
    );
    let n = logits.rows();
    let c = logits.cols();
    if let Some(w) = weights {
        assert_eq!(w.len(), c, "softmax_cross_entropy: weight count mismatch");
    }
    grad.copy_from(logits);
    softmax_in_place(grad);
    let mut loss = 0.0f32;
    let inv_n = 1.0 / n as f32;
    for (i, &t) in targets.iter().enumerate() {
        assert!(
            t < c,
            "softmax_cross_entropy: target {t} out of range for {c} classes"
        );
        let w = weights.map_or(1.0, |w| w[t]);
        let row = grad.row_mut(i);
        loss -= row[t].max(LOG_FLOOR).ln() * w;
        row[t] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_n * w;
        }
    }
    loss * inv_n
}

/// Mean cross-entropy loss only (no gradient), for validation monitoring.
pub fn cross_entropy_loss(logits: &Matrix, targets: &[usize]) -> f32 {
    cross_entropy_loss_weighted(logits, targets, None)
}

/// Class-weighted mean cross-entropy (no gradient). Validation must be
/// monitored under the *same* objective the optimiser minimises, or early
/// stopping fires on the wrong signal.
pub fn cross_entropy_loss_weighted(
    logits: &Matrix,
    targets: &[usize],
    weights: Option<&[f32]>,
) -> f32 {
    assert_eq!(
        targets.len(),
        logits.rows(),
        "cross_entropy_loss: target count mismatch"
    );
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    for (i, &t) in targets.iter().enumerate() {
        let w = weights.map_or(1.0, |w| w[t]);
        loss -= probs.get(i, t).max(LOG_FLOOR).ln() * w;
    }
    loss / targets.len() as f32
}

/// Element-wise sigmoid.
#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Mean binary cross-entropy with logits over a multi-hot target matrix
/// (`targets[i][j] ∈ {0, 1}`), plus `∂L/∂logits`. Supports the
/// *multi-label* reading of the general model's training target ("the
/// union of services' problems", §IV-F) and simultaneous-fault labelling.
///
/// # Panics
/// Panics if shapes differ or targets are outside `[0, 1]`.
pub fn binary_cross_entropy(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        logits.rows(),
        targets.rows(),
        "binary_cross_entropy: row mismatch"
    );
    assert_eq!(
        logits.cols(),
        targets.cols(),
        "binary_cross_entropy: col mismatch"
    );
    let n = (logits.rows() * logits.cols()).max(1) as f32;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0f32;
    for ((g, &z), &t) in grad
        .data_mut()
        .iter_mut()
        .zip(logits.data())
        .zip(targets.data())
    {
        assert!(
            (0.0..=1.0).contains(&t),
            "binary_cross_entropy: target {t} outside [0, 1]"
        );
        let p = sigmoid(z);
        loss -= t * p.max(LOG_FLOOR).ln() + (1.0 - t) * (1.0 - p).max(LOG_FLOOR).ln();
        *g = (p - t) / n;
    }
    (loss / n, grad)
}

/// Gradient of the paper's *ideal-label* loss `L* = −log y_argmax(y)`
/// (§III-E, used by the attention mechanism) with respect to the logits:
/// `∂L*/∂logits = softmax(logits) − onehot(argmax)`.
///
/// One row per sample; no `1/n` averaging since attention works per sample.
/// Allocating wrapper around [`ideal_label_grad_into`].
pub fn ideal_label_grad(logits: &Matrix) -> Matrix {
    let mut grad = Matrix::zeros(0, 0);
    ideal_label_grad_into(logits, &mut grad);
    grad
}

/// [`ideal_label_grad`] into a caller-provided buffer (resized as needed)
/// — the zero-allocation flavour the fused scoring backward seeds its
/// workspace with. Values are bit-identical to the allocating version.
// lint: no_alloc
pub fn ideal_label_grad_into(logits: &Matrix, grad: &mut Matrix) {
    grad.copy_from(logits);
    softmax_in_place(grad);
    for i in 0..grad.rows() {
        let arg = grad.argmax_row(i);
        let row = grad.row_mut(i);
        row[arg] -= 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = softmax(&x);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let x = Matrix::from_rows(&[vec![1000.0, 1001.0]]);
        let p = softmax(&x);
        assert!(!p.has_non_finite());
        assert!(p.get(0, 1) > p.get(0, 0));
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let x = Matrix::from_rows(&[vec![20.0, 0.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&x, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0, 0.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&x, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[vec![0.3, -0.7, 1.1], vec![0.0, 0.2, -0.4]]);
        let targets = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&x, &targets);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let lp = softmax_cross_entropy(&xp, &targets).0;
                let lm = softmax_cross_entropy(&xm, &targets).0;
                let num = (lp - lm) / (2.0 * eps);
                assert!((grad.get(r, c) - num).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // softmax − onehot always sums to 0 per row.
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let (_, grad) = softmax_cross_entropy(&x, &[1]);
        let s: f32 = grad.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn ideal_label_grad_zero_only_when_confident() {
        // Confident prediction → small gradient; uncertain → large.
        let confident = Matrix::from_rows(&[vec![10.0, 0.0]]);
        let uncertain = Matrix::from_rows(&[vec![0.1, 0.0]]);
        let gc = ideal_label_grad(&confident);
        let gu = ideal_label_grad(&uncertain);
        assert!(gc.norm() < gu.norm());
    }

    #[test]
    fn cross_entropy_loss_matches_grad_variant() {
        let x = Matrix::from_rows(&[vec![0.5, -0.2, 0.9], vec![1.0, 1.0, 1.0]]);
        let t = [0usize, 2];
        assert!((cross_entropy_loss(&x, &t) - softmax_cross_entropy(&x, &t).0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn target_out_of_range_panics() {
        softmax_cross_entropy(&Matrix::zeros(1, 2), &[5]);
    }

    #[test]
    fn weighted_ce_scales_loss_and_gradient_per_class() {
        let x = Matrix::from_rows(&[vec![0.2, -0.3, 0.5], vec![0.1, 0.4, -0.2]]);
        let targets = [0usize, 2];
        let weights = [2.0f32, 1.0, 0.5];
        let (lu, gu) = softmax_cross_entropy(&x, &targets);
        let (lw, gw) = softmax_cross_entropy_weighted(&x, &targets, Some(&weights));
        // Per-sample losses scale by w[target]; here the mean mixes 2.0 and
        // 0.5 weights, so recompute per row.
        let (l0, _) = softmax_cross_entropy(&Matrix::from_rows(&[x.row(0).to_vec()]), &[0]);
        let (l1, _) = softmax_cross_entropy(&Matrix::from_rows(&[x.row(1).to_vec()]), &[2]);
        assert!((lw - (2.0 * l0 + 0.5 * l1) / 2.0).abs() < 1e-5);
        assert!(lu > 0.0);
        // Gradients of row 0 doubled, row 1 halved.
        for c in 0..3 {
            assert!((gw.get(0, c) - 2.0 * gu.get(0, c)).abs() < 1e-6);
            assert!((gw.get(1, c) - 0.5 * gu.get(1, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn unit_weights_match_unweighted() {
        let x = Matrix::from_rows(&[vec![0.3, -0.1], vec![-0.5, 0.8]]);
        let targets = [1usize, 0];
        let (lu, gu) = softmax_cross_entropy(&x, &targets);
        let (lw, gw) = softmax_cross_entropy_weighted(&x, &targets, Some(&[1.0, 1.0]));
        assert_eq!(lu, lw);
        assert_eq!(gu, gw);
    }

    #[test]
    #[should_panic(expected = "weight count mismatch")]
    fn wrong_weight_count_panics() {
        softmax_cross_entropy_weighted(&Matrix::zeros(1, 3), &[0], Some(&[1.0]));
    }

    #[test]
    fn bce_perfect_and_uniform() {
        // Confident, correct logits → near-zero loss.
        let logits = Matrix::from_rows(&[vec![10.0, -10.0]]);
        let targets = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let (loss, _) = binary_cross_entropy(&logits, &targets);
        assert!(loss < 1e-3);
        // Zero logits → ln 2 per element.
        let (loss, _) = binary_cross_entropy(&Matrix::zeros(1, 3), &Matrix::zeros(1, 3));
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[vec![0.4, -0.7, 1.2]]);
        let t = Matrix::from_rows(&[vec![1.0, 0.0, 1.0]]);
        let (_, grad) = binary_cross_entropy(&x, &t);
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let num =
                (binary_cross_entropy(&xp, &t).0 - binary_cross_entropy(&xm, &t).0) / (2.0 * eps);
            assert!((grad.get(0, c) - num).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_supports_multi_hot_rows() {
        // Two simultaneous faults: both positive labels pull their logits up.
        let x = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]);
        let t = Matrix::from_rows(&[vec![1.0, 1.0, 0.0]]);
        let (_, grad) = binary_cross_entropy(&x, &t);
        assert!(grad.get(0, 0) < 0.0 && grad.get(0, 1) < 0.0);
        assert!(grad.get(0, 2) > 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bce_rejects_bad_targets() {
        binary_cross_entropy(&Matrix::zeros(1, 1), &Matrix::from_rows(&[vec![2.0]]));
    }

    #[test]
    fn weighted_validation_loss_matches() {
        let x = Matrix::from_rows(&[vec![0.3, -0.1, 0.2]]);
        let w = [3.0f32, 1.0, 1.0];
        let (l, _) = softmax_cross_entropy_weighted(&x, &[0], Some(&w));
        assert!((cross_entropy_loss_weighted(&x, &[0], Some(&w)) - l).abs() < 1e-6);
    }
}
