//! Optimisers. DiagNet (Table I) trains with SGD + Nesterov momentum,
//! learning rate 0.05 and decay 0.001; that is [`SgdNesterov`]'s default.

use crate::layer::{Layer, LayerGrads};
use crate::network::{Gradients, Network};
use crate::tensor::Matrix;

/// Anything that can apply a gradient step to a network.
pub trait Optimizer {
    /// Apply one update. Frozen layers must be left untouched.
    fn step(&mut self, net: &mut Network, grads: &Gradients);
    /// Reset internal state (velocities, step counters).
    fn reset(&mut self);
    /// Current effective learning rate.
    fn learning_rate(&self) -> f32;
}

/// Stochastic gradient descent with Nesterov momentum and time-based
/// learning-rate decay:
///
/// ```text
/// lr_t = lr0 / (1 + decay · t)
/// v    ← μ·v − lr_t·g
/// p    ← p + μ·v − lr_t·g        (Nesterov look-ahead form)
/// ```
#[derive(Debug, Clone)]
pub struct SgdNesterov {
    /// Initial learning rate (paper: 0.05).
    pub lr0: f32,
    /// Momentum coefficient μ.
    pub momentum: f32,
    /// Time-based decay (paper: 0.001).
    pub decay: f32,
    steps: u64,
    /// Per-layer velocity buffers, lazily shaped on the first step.
    velocities: Vec<LayerGrads>,
}

impl SgdNesterov {
    /// Create an optimiser.
    pub fn new(lr0: f32, momentum: f32, decay: f32) -> Self {
        assert!(lr0 > 0.0, "SgdNesterov: learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "SgdNesterov: momentum must be in [0, 1)"
        );
        assert!(decay >= 0.0, "SgdNesterov: decay must be non-negative");
        SgdNesterov {
            lr0,
            momentum,
            decay,
            steps: 0,
            velocities: Vec::new(),
        }
    }

    /// The paper's configuration: lr 0.05, Nesterov momentum 0.9, decay 1e-3.
    pub fn paper_default() -> Self {
        SgdNesterov::new(0.05, 0.9, 0.001)
    }

    fn ensure_velocities(&mut self, net: &Network) {
        if self.velocities.len() != net.layers.len() {
            self.velocities = net.layers.iter().map(Layer::zero_grads).collect();
        }
    }

    fn update_buffers(
        w: &mut Matrix,
        b: &mut [f32],
        g: (&Matrix, &[f32]),
        v: (&mut Matrix, &mut [f32]),
        lr: f32,
        mu: f32,
    ) {
        let (gw, gb) = g;
        let (vw, vb) = v;
        for ((p, &grad), vel) in w.data_mut().iter_mut().zip(gw.data()).zip(vw.data_mut()) {
            *vel = mu * *vel - lr * grad;
            *p += mu * *vel - lr * grad;
        }
        for ((p, &grad), vel) in b.iter_mut().zip(gb).zip(vb.iter_mut()) {
            *vel = mu * *vel - lr * grad;
            *p += mu * *vel - lr * grad;
        }
    }
}

impl Optimizer for SgdNesterov {
    fn step(&mut self, net: &mut Network, grads: &Gradients) {
        assert_eq!(
            grads.layers.len(),
            net.layers.len(),
            "SgdNesterov: gradient shape mismatch"
        );
        self.ensure_velocities(net);
        let lr = self.learning_rate();
        let mu = self.momentum;
        for ((layer, grad), vel) in net
            .layers
            .iter_mut()
            .zip(&grads.layers)
            .zip(&mut self.velocities)
        {
            if layer.is_frozen() {
                continue;
            }
            match (layer, grad, vel) {
                (
                    Layer::Dense(d),
                    LayerGrads::Dense { dw, db },
                    LayerGrads::Dense { dw: vw, db: vb },
                ) => Self::update_buffers(&mut d.w, &mut d.b, (dw, db), (vw, vb), lr, mu),
                (
                    Layer::LandPool(lp),
                    LayerGrads::LandPool { dk, db },
                    LayerGrads::LandPool { dk: vk, db: vb },
                ) => Self::update_buffers(&mut lp.kernel, &mut lp.bias, (dk, db), (vk, vb), lr, mu),
                (Layer::ReLU, LayerGrads::None, LayerGrads::None) => {}
                _ => panic!("SgdNesterov: layer/gradient variant mismatch"),
            }
        }
        self.steps += 1;
    }

    fn reset(&mut self) {
        self.steps = 0;
        self.velocities.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr0 / (1.0 + self.decay * self.steps as f32)
    }
}

/// Adam (Kingma & Ba 2015) with bias correction — not used by the paper
/// (Table I specifies SGD + Nesterov) but provided so the optimiser choice
/// can be ablated.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Step size α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability term ε.
    pub eps: f32,
    steps: u64,
    /// First moments, mirroring the network layers.
    m: Vec<LayerGrads>,
    /// Second moments.
    v: Vec<LayerGrads>,
}

impl Adam {
    /// Create an Adam optimiser with the usual β defaults.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            steps: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, net: &Network) {
        if self.m.len() != net.layers.len() {
            self.m = net.layers.iter().map(Layer::zero_grads).collect();
            self.v = net.layers.iter().map(Layer::zero_grads).collect();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn update(
        params: &mut [f32],
        grads: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        bias1: f32,
        bias2: f32,
    ) {
        for (((p, &g), mi), vi) in params
            .iter_mut()
            .zip(grads)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = beta1 * *mi + (1.0 - beta1) * g;
            *vi = beta2 * *vi + (1.0 - beta2) * g * g;
            let m_hat = *mi / bias1;
            let v_hat = *vi / bias2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Network, grads: &Gradients) {
        assert_eq!(
            grads.layers.len(),
            net.layers.len(),
            "Adam: gradient shape mismatch"
        );
        self.ensure_state(net);
        self.steps += 1;
        let bias1 = 1.0 - self.beta1.powi(self.steps as i32);
        let bias2 = 1.0 - self.beta2.powi(self.steps as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        for (((layer, grad), m), v) in net
            .layers
            .iter_mut()
            .zip(&grads.layers)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            if layer.is_frozen() {
                continue;
            }
            match (layer, grad, m, v) {
                (
                    Layer::Dense(d),
                    LayerGrads::Dense { dw, db },
                    LayerGrads::Dense { dw: mw, db: mb },
                    LayerGrads::Dense { dw: vw, db: vb },
                ) => {
                    Self::update(
                        d.w.data_mut(),
                        dw.data(),
                        mw.data_mut(),
                        vw.data_mut(),
                        lr,
                        b1,
                        b2,
                        eps,
                        bias1,
                        bias2,
                    );
                    Self::update(&mut d.b, db, mb, vb, lr, b1, b2, eps, bias1, bias2);
                }
                (
                    Layer::LandPool(lp),
                    LayerGrads::LandPool { dk, db },
                    LayerGrads::LandPool { dk: mk, db: mb },
                    LayerGrads::LandPool { dk: vk, db: vb },
                ) => {
                    Self::update(
                        lp.kernel.data_mut(),
                        dk.data(),
                        mk.data_mut(),
                        vk.data_mut(),
                        lr,
                        b1,
                        b2,
                        eps,
                        bias1,
                        bias2,
                    );
                    Self::update(&mut lp.bias, db, mb, vb, lr, b1, b2, eps, bias1, bias2);
                }
                (Layer::ReLU, LayerGrads::None, LayerGrads::None, LayerGrads::None) => {}
                _ => panic!("Adam: layer/gradient variant mismatch"),
            }
        }
    }

    fn reset(&mut self) {
        self.steps = 0;
        self.m.clear();
        self.v.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn quadratic_net() -> Network {
        // Single 1→1 dense layer; loss analogue handled manually in tests.
        Network::new(vec![Layer::dense(1, 1, 1)])
    }

    fn weight(net: &Network) -> f32 {
        let Layer::Dense(d) = &net.layers[0] else {
            panic!()
        };
        d.w.get(0, 0)
    }

    /// Minimise f(w) = (w − 3)² by feeding the optimiser ∂f/∂w directly.
    #[test]
    fn converges_on_quadratic() {
        let mut net = quadratic_net();
        let mut opt = SgdNesterov::new(0.1, 0.9, 0.0);
        for _ in 0..100 {
            let w = weight(&net);
            let mut grads = Gradients::zeros_like(&net);
            if let LayerGrads::Dense { dw, .. } = &mut grads.layers[0] {
                dw.set(0, 0, 2.0 * (w - 3.0));
            }
            opt.step(&mut net, &grads);
        }
        assert!((weight(&net) - 3.0).abs() < 1e-3, "w = {}", weight(&net));
    }

    #[test]
    fn momentum_accelerates_over_plain_sgd() {
        let run = |momentum: f32| {
            let mut net = quadratic_net();
            let mut opt = SgdNesterov::new(0.01, momentum, 0.0);
            for _ in 0..50 {
                let w = weight(&net);
                let mut grads = Gradients::zeros_like(&net);
                if let LayerGrads::Dense { dw, .. } = &mut grads.layers[0] {
                    dw.set(0, 0, 2.0 * (w - 3.0));
                }
                opt.step(&mut net, &grads);
            }
            (weight(&net) - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn decay_reduces_learning_rate() {
        let mut opt = SgdNesterov::new(0.05, 0.9, 0.001);
        assert_eq!(opt.learning_rate(), 0.05);
        let mut net = quadratic_net();
        let grads = Gradients::zeros_like(&net);
        for _ in 0..1000 {
            opt.step(&mut net, &grads);
        }
        assert!((opt.learning_rate() - 0.025).abs() < 1e-4);
    }

    #[test]
    fn frozen_layers_untouched() {
        let mut net = Network::new(vec![Layer::dense(2, 2, 3), Layer::dense(2, 2, 4)]);
        net.layers[0].set_frozen(true);
        let before_frozen = net.layers[0].clone();
        let before_free = net.layers[1].clone();
        let mut grads = Gradients::zeros_like(&net);
        let mut rng = SplitMix64::new(5);
        for g in &mut grads.layers {
            if let LayerGrads::Dense { dw, db } = g {
                for v in dw.data_mut() {
                    *v = rng.next_f32();
                }
                for v in db.iter_mut() {
                    *v = rng.next_f32();
                }
            }
        }
        let mut opt = SgdNesterov::paper_default();
        opt.step(&mut net, &grads);
        assert_eq!(net.layers[0], before_frozen);
        assert_ne!(net.layers[1], before_free);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = SgdNesterov::new(0.05, 0.9, 0.01);
        let mut net = quadratic_net();
        let grads = Gradients::zeros_like(&net);
        opt.step(&mut net, &grads);
        assert!(opt.learning_rate() < 0.05);
        opt.reset();
        assert_eq!(opt.learning_rate(), 0.05);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn invalid_momentum_panics() {
        SgdNesterov::new(0.1, 1.5, 0.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut net = quadratic_net();
        let mut opt = Adam::new(0.2);
        for _ in 0..200 {
            let w = weight(&net);
            let mut grads = Gradients::zeros_like(&net);
            if let LayerGrads::Dense { dw, .. } = &mut grads.layers[0] {
                dw.set(0, 0, 2.0 * (w - 3.0));
            }
            opt.step(&mut net, &grads);
        }
        assert!((weight(&net) - 3.0).abs() < 1e-2, "w = {}", weight(&net));
    }

    #[test]
    fn adam_respects_frozen_layers() {
        let mut net = Network::new(vec![Layer::dense(2, 2, 3)]);
        net.layers[0].set_frozen(true);
        let before = net.layers[0].clone();
        let mut grads = Gradients::zeros_like(&net);
        if let LayerGrads::Dense { dw, .. } = &mut grads.layers[0] {
            dw.set(0, 0, 5.0);
        }
        let mut opt = Adam::new(0.1);
        opt.step(&mut net, &grads);
        assert_eq!(net.layers[0], before);
    }

    #[test]
    fn adam_reset_clears_moments() {
        let mut net = quadratic_net();
        let mut opt = Adam::new(0.1);
        let mut grads = Gradients::zeros_like(&net);
        if let LayerGrads::Dense { dw, .. } = &mut grads.layers[0] {
            dw.set(0, 0, 1.0);
        }
        opt.step(&mut net, &grads);
        let w_after_one = weight(&net);
        opt.reset();
        let mut net2 = quadratic_net();
        opt.step(&mut net2, &grads);
        assert!(
            (weight(&net2) - w_after_one).abs() < 1e-6,
            "reset restores step-1 behaviour"
        );
    }
}
