//! Error type shared across the crate.

use std::fmt;

/// Errors raised by network construction, training or (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Two tensors (or a tensor and a layer) disagree on a dimension.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        context: String,
        /// Dimension that was expected.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
    /// The training set is empty or labels are inconsistent with it.
    InvalidTrainingData(String),
    /// A model file could not be parsed.
    Serialization(String),
    /// A configuration value is out of its legal range.
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected}, got {actual}"
                )
            }
            NnError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            NnError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}
