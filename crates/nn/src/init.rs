//! Weight initialisation schemes.

use crate::rng::SplitMix64;
use crate::tensor::Matrix;

/// He (Kaiming) initialisation: `N(0, sqrt(2 / fan_in))`. Appropriate for
/// layers followed by ReLU — the configuration used by DiagNet's MLP.
pub fn he(rows: usize, cols: usize, fan_in: usize, seed: u64) -> Matrix {
    assert!(fan_in > 0, "he init: fan_in must be positive");
    let std_dev = (2.0 / fan_in as f32).sqrt();
    let mut rng = SplitMix64::new(seed);
    let data = (0..rows * cols)
        .map(|_| rng.normal_with(0.0, std_dev))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Used for the LandPooling kernel,
/// which feeds linear pooling statistics rather than a ReLU.
pub fn xavier(rows: usize, cols: usize, fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    assert!(fan_in + fan_out > 0, "xavier init: fans must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut rng = SplitMix64::new(seed);
    let data = (0..rows * cols).map(|_| rng.uniform(-a, a)).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_statistics() {
        let m = he(100, 100, 100, 3);
        let mean = m.data().iter().sum::<f32>() / 10_000.0;
        let var = m
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.01);
        assert!((var - 0.02).abs() < 0.005, "var = {var}"); // 2/100
    }

    #[test]
    fn xavier_bounded() {
        let a = (6.0f32 / 20.0).sqrt();
        let m = xavier(10, 10, 10, 10, 5);
        assert!(m.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(he(4, 4, 4, 9), he(4, 4, 4, 9));
        assert_ne!(he(4, 4, 4, 9), he(4, 4, 4, 10));
    }
}
