//! Training-convergence integration tests: the framework must actually
//! *learn* on tasks shaped like DiagNet's, not just compute gradients
//! correctly.

use diagnet_nn::prelude::*;
use diagnet_rng::SplitMix64;

/// A miniature of DiagNet's core problem: ℓ landmark blocks of k metrics;
/// in "faulty" samples one random landmark's metric `fault_metric` is
/// shifted. The label is which metric family was faulted (or nominal) —
/// the *location* is deliberately random, so only landmark-invariant
/// pattern extraction can solve it.
fn landmark_task(n: usize, ell: usize, k: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = SplitMix64::new(seed);
    let n_local = 2;
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<f32> = (0..ell * k + n_local).map(|_| rng.normal()).collect();
        let label = i % (k + 1); // 0 = nominal, 1..=k = fault on metric j-1
        if label > 0 {
            let landmark = rng.next_below(ell);
            row[landmark * k + (label - 1)] += 4.0;
        }
        rows.push(row);
        labels.push(label);
    }
    (Matrix::from_rows(&rows), labels)
}

fn accuracy(net: &Network, x: &Matrix, y: &[usize]) -> f32 {
    let preds = net.predict(x);
    preds.iter().zip(y).filter(|(p, t)| p == t).count() as f32 / y.len() as f32
}

#[test]
fn landpool_network_solves_the_landmark_task() {
    let (ell, k) = (6, 3);
    let (x, y) = landmark_task(600, ell, k, 1);
    let (xt, yt) = landmark_task(200, ell, k, 2);
    let mut net = Network::new(vec![
        Layer::land_pool(8, k, 2, PoolOp::standard_bank(), 3),
        Layer::dense(8 * 13 + 2, 24, 4),
        Layer::relu(),
        Layer::dense(24, k + 1, 5),
    ]);
    let cfg = TrainConfig {
        epochs: 40,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };
    Trainer::new(cfg, SgdNesterov::new(0.05, 0.9, 0.001))
        .fit(&mut net, &x, &y, None, 7)
        .unwrap();
    let acc = accuracy(&net, &xt, &yt);
    assert!(
        acc > 0.8,
        "LandPool net must solve the location-agnostic fault task: {acc}"
    );
}

#[test]
fn landpool_generalises_to_more_landmarks_on_the_task() {
    // Train with 6 landmarks, test with 12: the shifted block may sit in
    // positions that did not exist during training.
    let k = 3;
    let (x, y) = landmark_task(600, 6, k, 11);
    let (xt, yt) = landmark_task(200, 12, k, 12);
    let mut net = Network::new(vec![
        Layer::land_pool(8, k, 2, PoolOp::standard_bank(), 13),
        Layer::dense(8 * 13 + 2, 24, 14),
        Layer::relu(),
        Layer::dense(24, k + 1, 15),
    ]);
    let cfg = TrainConfig {
        epochs: 40,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };
    Trainer::new(cfg, SgdNesterov::new(0.05, 0.9, 0.001))
        .fit(&mut net, &x, &y, None, 17)
        .unwrap();
    let acc = accuracy(&net, &xt, &yt);
    assert!(
        acc > 0.6,
        "doubling the landmark count must not break the classifier: {acc}"
    );
}

#[test]
fn plain_dense_network_fails_under_landmark_permutation() {
    // Control experiment: a dense net can fit the task in-distribution but
    // must degrade when landmark blocks are permuted at test time, whereas
    // LandPooling is permutation-invariant by construction. This is the
    // architectural claim of paper §III-C in falsifiable form.
    let (ell, k) = (6, 3);
    let (x, y) = landmark_task(600, ell, k, 21);
    let in_dim = ell * k + 2;

    // Permute whole landmark blocks of every test row.
    let (xt, yt) = landmark_task(200, ell, k, 22);
    let mut perm: Vec<usize> = (0..ell).collect();
    SplitMix64::new(23).shuffle(&mut perm);
    let permuted_rows: Vec<Vec<f32>> = (0..xt.rows())
        .map(|i| {
            let row = xt.row(i);
            let mut out = Vec::with_capacity(in_dim);
            for &lam in &perm {
                out.extend_from_slice(&row[lam * k..(lam + 1) * k]);
            }
            out.extend_from_slice(&row[ell * k..]);
            out
        })
        .collect();
    let xt_perm = Matrix::from_rows(&permuted_rows);

    let cfg = TrainConfig {
        epochs: 40,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };

    // LandPool variant.
    let mut pool_net = Network::new(vec![
        Layer::land_pool(8, k, 2, PoolOp::standard_bank(), 31),
        Layer::dense(8 * 13 + 2, 24, 32),
        Layer::relu(),
        Layer::dense(24, k + 1, 33),
    ]);
    Trainer::new(cfg.clone(), SgdNesterov::new(0.05, 0.9, 0.001))
        .fit(&mut pool_net, &x, &y, None, 34)
        .unwrap();
    let pool_plain = accuracy(&pool_net, &xt, &yt);
    let pool_perm = accuracy(&pool_net, &xt_perm, &yt);
    assert!(
        (pool_plain - pool_perm).abs() < 1e-4,
        "LandPooling must be exactly permutation-invariant: {pool_plain} vs {pool_perm}"
    );

    // Dense-only variant.
    let mut dense_net = Network::new(vec![
        Layer::dense(in_dim, 64, 41),
        Layer::relu(),
        Layer::dense(64, 24, 42),
        Layer::relu(),
        Layer::dense(24, k + 1, 43),
    ]);
    Trainer::new(cfg, SgdNesterov::new(0.05, 0.9, 0.001))
        .fit(&mut dense_net, &x, &y, None, 44)
        .unwrap();
    let dense_plain = accuracy(&dense_net, &xt, &yt);
    assert!(
        dense_plain > 0.7,
        "the dense control must at least fit in-distribution: {dense_plain}"
    );
    // The dense net carries positional weights, so permuting blocks changes
    // its outputs (it may still often be *accurate* here because this task
    // randomises fault locations during training — real deployments don't,
    // which is the paper's point). LandPooling's outputs are bit-identical.
    let plain_logits = dense_net.forward(&xt);
    let perm_logits = dense_net.forward(&xt_perm);
    assert!(
        plain_logits.max_abs_diff(&perm_logits) > 1e-3,
        "a dense net cannot be exactly permutation-invariant"
    );
}

#[test]
fn adam_also_solves_the_task() {
    use diagnet_nn::optim::Adam;
    let (ell, k) = (5, 3);
    let (x, y) = landmark_task(400, ell, k, 51);
    let mut net = Network::new(vec![
        Layer::land_pool(6, k, 2, PoolOp::small_bank(), 52),
        Layer::dense(6 * 3 + 2, 16, 53),
        Layer::relu(),
        Layer::dense(16, k + 1, 54),
    ]);
    let cfg = TrainConfig {
        epochs: 40,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };
    Trainer::new(cfg, Adam::new(0.005))
        .fit(&mut net, &x, &y, None, 55)
        .unwrap();
    let acc = accuracy(&net, &x, &y);
    assert!(acc > 0.8, "Adam training accuracy {acc}");
}
