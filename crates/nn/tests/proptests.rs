//! Property-based tests of the numerical core: linear-algebra identities,
//! pooling invariants, softmax/loss properties and layer behaviours that
//! must hold for *arbitrary* inputs, not just hand-picked ones.

use diagnet_nn::layer::Layer;
use diagnet_nn::linalg::{
    add_bias, column_sums, column_sums_acc, matmul, matmul_at, matmul_at_acc, matmul_at_into,
    matmul_bt, matmul_bt_into, matmul_into,
};
use diagnet_nn::loss::{cross_entropy_loss, softmax, softmax_cross_entropy};
use diagnet_nn::pool::{pool_backward, pool_forward, PoolOp, PoolScratch};
use diagnet_nn::tensor::{argmax, argsort_desc, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with bounded dimensions and finite values.
fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// A small non-empty f32 vector.
fn values(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    len.prop_flat_map(|n| prop::collection::vec(-100.0f32..100.0, n))
}

/// Textbook triple-loop reference the fused/tiled kernels must match.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Linear algebra.
    // ------------------------------------------------------------------

    /// (A·B)ᵀ = Bᵀ·Aᵀ, expressed through the fused kernels.
    #[test]
    fn matmul_transpose_identity(a in matrix(1..6, 1..6), b in matrix(1..6, 1..6)) {
        prop_assume!(a.cols() == b.rows());
        let ab = matmul(&a, &b);
        let btat = matmul(&b.transpose(), &a.transpose());
        prop_assert!(ab.transpose().max_abs_diff(&btat) < 1e-4);
    }

    /// matmul_bt(A, B) = A·Bᵀ and matmul_at(A, B) = Aᵀ·B.
    #[test]
    fn fused_kernels_match_explicit_transpose(a in matrix(1..6, 1..6), b in matrix(1..6, 1..6)) {
        if a.cols() == b.cols() {
            prop_assert!(matmul_bt(&a, &b).max_abs_diff(&matmul(&a, &b.transpose())) < 1e-4);
        }
        if a.rows() == b.rows() {
            prop_assert!(matmul_at(&a, &b).max_abs_diff(&matmul(&a.transpose(), &b)) < 1e-4);
        }
    }

    /// The `*_into` kernels match the naive reference regardless of the
    /// (dirty, wrongly-shaped) state of the output buffer, and the
    /// allocating wrappers agree bit-for-bit with their `_into` twins.
    #[test]
    fn into_kernels_match_naive(
        a in matrix(1..8, 1..8),
        b in matrix(1..8, 1..8),
        junk_dim in 0usize..5,
        junk in -9.0f32..9.0,
    ) {
        let mut out = Matrix::full(junk_dim, junk_dim + 1, junk);
        if a.cols() == b.rows() {
            matmul_into(&a, &b, &mut out);
            prop_assert!(out.max_abs_diff(&naive_matmul(&a, &b)) < 1e-3);
            prop_assert_eq!(&matmul(&a, &b), &out);
        }
        if a.cols() == b.cols() {
            matmul_bt_into(&a, &b, &mut out);
            prop_assert!(out.max_abs_diff(&naive_matmul(&a, &b.transpose())) < 1e-3);
            prop_assert_eq!(&matmul_bt(&a, &b), &out);
        }
        if a.rows() == b.rows() {
            matmul_at_into(&a, &b, &mut out);
            prop_assert!(out.max_abs_diff(&naive_matmul(&a.transpose(), &b)) < 1e-3);
            prop_assert_eq!(&matmul_at(&a, &b), &out);
        }
    }

    /// `matmul_at_acc` adds Aᵀ·B on top of the existing buffer, and
    /// `column_sums_acc` adds the column sums — both must equal the
    /// non-accumulating results plus the prior contents.
    #[test]
    fn accumulating_kernels_accumulate(
        a in matrix(1..8, 1..8),
        b in matrix(1..8, 1..8),
        base in -5.0f32..5.0,
    ) {
        prop_assume!(a.rows() == b.rows());
        let mut acc = Matrix::full(a.cols(), b.cols(), base);
        matmul_at_acc(&a, &b, &mut acc);
        let fresh = matmul_at(&a, &b);
        for (got, want) in acc.data().iter().zip(fresh.data()) {
            prop_assert!((got - (want + base)).abs() < 1e-3);
        }
        let mut sums = vec![base; b.cols()];
        column_sums_acc(&b, &mut sums);
        for (got, want) in sums.iter().zip(column_sums(&b)) {
            prop_assert!((got - (want + base)).abs() < 1e-3);
        }
    }

    /// Column sums after a bias add grow by rows × bias.
    #[test]
    fn bias_add_shifts_column_sums(m in matrix(1..6, 1..6), shift in -5.0f32..5.0) {
        let before = column_sums(&m);
        let mut shifted = m.clone();
        let bias = vec![shift; m.cols()];
        add_bias(&mut shifted, &bias);
        let after = column_sums(&shifted);
        for (b, a) in before.iter().zip(&after) {
            prop_assert!((a - b - shift * m.rows() as f32).abs() < 1e-3);
        }
    }

    /// Row selection preserves content.
    #[test]
    fn select_rows_identity(m in matrix(1..8, 1..8)) {
        let all: Vec<usize> = (0..m.rows()).collect();
        prop_assert_eq!(m.select_rows(&all), m);
    }

    /// argsort_desc is a permutation sorted by score.
    #[test]
    fn argsort_desc_is_sorted_permutation(xs in values(1..30)) {
        let order = argsort_desc(&xs);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..xs.len()).collect::<Vec<_>>());
        for w in order.windows(2) {
            prop_assert!(xs[w[0]] >= xs[w[1]]);
        }
        prop_assert_eq!(order[0], argmax(&xs));
    }

    // ------------------------------------------------------------------
    // Pooling.
    // ------------------------------------------------------------------

    /// All pooling ops are permutation-invariant (the property that makes
    /// LandPooling landmark-order agnostic).
    #[test]
    fn pooling_is_permutation_invariant(mut vals in values(1..20), seed in 0u64..1000) {
        let ops = PoolOp::standard_bank();
        let mut scratch = PoolScratch::default();
        let mut out1 = vec![0.0; ops.len()];
        pool_forward(&vals, &ops, &mut out1, &mut scratch);
        diagnet_rng::SplitMix64::new(seed).shuffle(&mut vals);
        let mut out2 = vec![0.0; ops.len()];
        pool_forward(&vals, &ops, &mut out2, &mut scratch);
        for (a, b) in out1.iter().zip(&out2) {
            // Relative tolerance: f32 summation order differs (Var sums
            // squares of values up to 100 → results near 1e4).
            prop_assert!((a - b).abs() <= 1e-4 + 1e-5 * a.abs().max(b.abs()), "{a} vs {b}");
        }
    }

    /// min ≤ p10 ≤ … ≤ p90 ≤ max, and avg within [min, max].
    #[test]
    fn pooling_order_statistics_monotone(vals in values(1..20)) {
        let ops = PoolOp::standard_bank();
        let mut out = vec![0.0; ops.len()];
        pool_forward(&vals, &ops, &mut out, &mut PoolScratch::default());
        let (min, max, avg) = (out[0], out[1], out[2]);
        prop_assert!(min <= max);
        prop_assert!(avg >= min - 1e-4 && avg <= max + 1e-4);
        // Percentiles p10..p90 occupy slots 4..13 and must be monotone.
        for w in out[4..13].windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-4);
        }
        prop_assert!(min - 1e-4 <= out[4] && out[12] <= max + 1e-4);
    }

    /// Pool gradients conserve mass for linear ops: the avg gradient sums
    /// to the upstream gradient; min/max route it to a single element.
    #[test]
    fn pool_gradient_mass(vals in values(2..15), g in 0.1f32..3.0) {
        let mut scratch = PoolScratch::default();
        for op in [PoolOp::Avg, PoolOp::Min, PoolOp::Max, PoolOp::Percentile(50)] {
            let mut grads = vec![0.0; vals.len()];
            pool_backward(&vals, &[op], &[g], &mut grads, &mut scratch);
            let total: f32 = grads.iter().sum();
            prop_assert!((total - g).abs() < 1e-4, "op {:?}: mass {total} != {g}", op);
        }
    }

    /// Variance pooling is translation invariant; its gradient sums to 0.
    #[test]
    fn variance_translation_invariant(vals in values(2..15), shift in -50.0f32..50.0) {
        let mut scratch = PoolScratch::default();
        let mut out1 = vec![0.0];
        pool_forward(&vals, &[PoolOp::Var], &mut out1, &mut scratch);
        let shifted: Vec<f32> = vals.iter().map(|v| v + shift).collect();
        let mut out2 = vec![0.0];
        pool_forward(&shifted, &[PoolOp::Var], &mut out2, &mut scratch);
        // Relative tolerance: f32 cancellation grows with |shift|.
        let tol = 1e-3 * (1.0 + out1[0].abs() + shift.abs());
        prop_assert!((out1[0] - out2[0]).abs() < tol, "{} vs {}", out1[0], out2[0]);
        let mut grads = vec![0.0; vals.len()];
        pool_backward(&vals, &[PoolOp::Var], &[1.0], &mut grads, &mut scratch);
        prop_assert!(grads.iter().sum::<f32>().abs() < 1e-3);
    }

    // ------------------------------------------------------------------
    // Softmax & loss.
    // ------------------------------------------------------------------

    /// Softmax rows are probability distributions and are shift-invariant.
    #[test]
    fn softmax_distribution_and_shift_invariance(m in matrix(1..5, 2..8), shift in -20.0f32..20.0) {
        let p = softmax(&m);
        for r in 0..p.rows() {
            prop_assert!((p.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let mut shifted = m.clone();
        for v in shifted.data_mut() {
            *v += shift;
        }
        prop_assert!(softmax(&shifted).max_abs_diff(&p) < 1e-4);
    }

    /// Cross-entropy is non-negative and its logit gradient rows sum to 0.
    #[test]
    fn cross_entropy_properties(m in matrix(1..5, 2..6), pick in 0usize..6) {
        let targets: Vec<usize> = (0..m.rows()).map(|i| (pick + i) % m.cols()).collect();
        let (loss, grad) = softmax_cross_entropy(&m, &targets);
        prop_assert!(loss >= 0.0);
        prop_assert!((loss - cross_entropy_loss(&m, &targets)).abs() < 1e-5);
        for r in 0..grad.rows() {
            prop_assert!(grad.row(r).iter().sum::<f32>().abs() < 1e-5);
        }
    }

    // ------------------------------------------------------------------
    // Layers.
    // ------------------------------------------------------------------

    /// ReLU output is idempotent and non-negative.
    #[test]
    fn relu_idempotent(m in matrix(1..6, 1..10)) {
        let relu = Layer::relu();
        let once = relu.forward(&m);
        prop_assert!(once.data().iter().all(|&v| v >= 0.0));
        prop_assert_eq!(relu.forward(&once), once);
    }

    /// Dense layers are affine: f(αx) − f(0) = α(f(x) − f(0)).
    #[test]
    fn dense_is_affine(m in matrix(1..4, 3..4), alpha in 0.1f32..3.0) {
        let layer = Layer::dense(3, 5, 42);
        let zero = layer.forward(&Matrix::zeros(m.rows(), 3));
        let fx = layer.forward(&m);
        let mut scaled_in = m.clone();
        scaled_in.scale(alpha);
        let f_scaled = layer.forward(&scaled_in);
        for i in 0..m.rows() {
            for j in 0..5 {
                let lhs = f_scaled.get(i, j) - zero.get(i, j);
                let rhs = alpha * (fx.get(i, j) - zero.get(i, j));
                prop_assert!((lhs - rhs).abs() < 1e-3);
            }
        }
    }

    /// LandPooling output width never depends on the landmark count.
    #[test]
    fn landpool_width_invariant(ell in 1usize..20, batch in 1usize..4) {
        let layer = Layer::land_pool(4, 5, 5, PoolOp::small_bank(), 7);
        let x = Matrix::zeros(batch, ell * 5 + 5);
        prop_assert_eq!(layer.forward(&x).cols(), 4 * 3 + 5);
    }
}
