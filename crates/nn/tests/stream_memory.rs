//! Bounded-memory test for streaming training: the live-heap high-water
//! mark of `Trainer::fit_streaming` with a bounded shuffle window must be
//! governed by the window and batch size, not by the pass length.
//!
//! A live-byte-tracking global allocator records the peak heap in use
//! while training over a synthetic on-the-fly source (no backing store),
//! once over a small pass and once over a 16× longer one. The peak may
//! not grow with the pass, and must stay far below what materialising the
//! long pass as a design matrix would cost. This file holds exactly one
//! test so no concurrent test can pollute the counters, and the network
//! is sized so every kernel takes its serial dispatch path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use diagnet_nn::prelude::*;

struct LiveBytesAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for LiveBytesAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static GLOBAL: LiveBytesAlloc = LiveBytesAlloc;

/// Generates rows on demand from a tiny deterministic PRNG: holds no
/// per-pass state beyond a cursor, so any memory growth observed during
/// training is the trainer's own.
struct SyntheticSource {
    n: usize,
    width: usize,
    chunk: usize,
    next: usize,
}

impl BatchSource for SyntheticSource {
    fn num_rows(&self) -> usize {
        self.n
    }

    fn width(&self) -> usize {
        self.width
    }

    fn reset(&mut self) {
        self.next = 0;
    }

    fn next_rows(&mut self, limit: usize, x: &mut Vec<f32>, y: &mut Vec<usize>) -> usize {
        let take = limit.min(self.chunk).min(self.n - self.next);
        for i in 0..take {
            let row = (self.next + i) as u64;
            let mut state = row.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            for _ in 0..self.width {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                x.push(((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5);
            }
            y.push((row % 4) as usize);
        }
        self.next += take;
        take
    }
}

/// A DiagNet-shaped stack small enough to stay on serial kernel paths.
fn small_net() -> Network {
    Network::new(vec![
        Layer::land_pool(3, 2, 2, vec![PoolOp::Min, PoolOp::Avg, PoolOp::Max], 1),
        Layer::dense(3 * 3 + 2, 16, 2),
        Layer::relu(),
        Layer::dense(16, 4, 3),
    ])
}

/// Train one bounded-window streaming epoch over `n` rows and return the
/// live-heap high-water mark (bytes above the pre-call baseline).
fn peak_heap_for_pass(n: usize) -> usize {
    let width = 4 * 2 + 2;
    let mut source = SyntheticSource {
        n,
        width,
        chunk: 64,
        next: 0,
    };
    let mut net = small_net();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        patience: None,
        shuffle: true,
        restore_best: false,
        class_weights: None,
        shuffle_window: Some(128),
    };
    let mut trainer = Trainer::new(cfg, SgdNesterov::new(0.01, 0.9, 0.0));
    let base = LIVE.load(Ordering::SeqCst);
    PEAK.store(base, Ordering::SeqCst);
    let history = trainer
        .fit_streaming(&mut net, &mut source, None, 7)
        .expect("fit_streaming");
    assert_eq!(history.epochs_run, 2);
    PEAK.load(Ordering::SeqCst).saturating_sub(base)
}

#[test]
fn bounded_window_peak_heap_is_independent_of_pass_length() {
    // Warm-up run so one-time lazy initialisation (rayon pools, obs
    // registry) is excluded from both measured runs.
    let _ = peak_heap_for_pass(512);

    let small_n = 1_000;
    let large_n = 16_000;
    let peak_small = peak_heap_for_pass(small_n);
    let peak_large = peak_heap_for_pass(large_n);

    // 16× the rows may not even double the peak: memory is bounded by the
    // shuffle window, batch size and workspaces, not the pass length.
    assert!(
        peak_large <= peak_small.saturating_mul(2).max(64 * 1024),
        "peak heap grew with pass length: {peak_small} B for {small_n} rows \
         vs {peak_large} B for {large_n} rows"
    );

    // And the peak must be far below the materialised design matrix of
    // the long pass (rows × width × 4 bytes).
    let materialized = large_n * (4 * 2 + 2) * std::mem::size_of::<f32>();
    assert!(
        peak_large < materialized / 2,
        "streaming training peaked at {peak_large} B, not meaningfully below \
         the {materialized} B a materialised pass would need"
    );
}
