//! Steady-state allocation test: after workspace warm-up, a forward pass
//! must not touch the heap at all.
//!
//! A counting global allocator wraps the system allocator; the test warms
//! the workspaces up, flips the counter on, runs many passes and asserts
//! the count stayed at zero. This file holds exactly one test so no
//! concurrent test can pollute the counter, and the network is sized so
//! every kernel takes its serial dispatch path (parallel paths hand work
//! to rayon, whose queues are outside this contract).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use diagnet_nn::loss::{ideal_label_grad_into, softmax_cross_entropy_weighted_into};
use diagnet_nn::network::Gradients;
use diagnet_nn::prelude::*;
use diagnet_nn::workspace::{BackwardWorkspace, ForwardWorkspace};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A DiagNet-shaped stack (LandPool incl. a percentile op → Dense → ReLU
/// → Dense) small enough that every linalg/pooling dispatch stays serial.
fn small_net() -> Network {
    Network::new(vec![
        Layer::land_pool(
            3,
            2,
            2,
            vec![PoolOp::Min, PoolOp::Avg, PoolOp::Percentile(50)],
            1,
        ),
        Layer::dense(3 * 3 + 2, 16, 2),
        Layer::relu(),
        Layer::dense(16, 4, 3),
    ])
}

#[test]
fn steady_state_forward_is_allocation_free() {
    let net = small_net();
    let mut fws = ForwardWorkspace::new(&net);
    let mut bws = BackwardWorkspace::new(&net);
    let mut grads = Gradients::zeros_like(&net);
    let mut grad_logits = Matrix::zeros(0, 0);
    let x = Matrix::from_vec(
        4,
        4 * 2 + 2,
        (0..4 * 10).map(|i| (i as f32 * 0.37).sin()).collect(),
    );
    let targets = [0usize, 2, 1, 3];

    // Warm-up: buffers grow to steady-state capacity.
    for _ in 0..3 {
        net.forward_ws(&x, &mut fws);
        softmax_cross_entropy_weighted_into(fws.output(), &targets, None, &mut grad_logits);
        grads.zero();
        bws.grad_logits_mut().copy_from(&grad_logits);
        net.backward_ws(&x, &fws, Some(&mut grads), &mut bws);
    }

    // Steady state: the forward pass must never hit the allocator.
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut checksum = 0.0f32;
    for _ in 0..50 {
        let logits = net.forward_ws(&x, &mut fws);
        checksum += logits.get(0, 0);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let forward_allocs = ALLOC_CALLS.load(Ordering::SeqCst);
    assert!(checksum.is_finite());
    assert_eq!(
        forward_allocs, 0,
        "steady-state forward pass allocated {forward_allocs} times"
    );

    // The full training step (loss + backward) must also be clean on the
    // serial path.
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..20 {
        net.forward_ws(&x, &mut fws);
        softmax_cross_entropy_weighted_into(fws.output(), &targets, None, &mut grad_logits);
        grads.zero();
        bws.grad_logits_mut().copy_from(&grad_logits);
        net.backward_ws(&x, &fws, Some(&mut grads), &mut bws);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let step_allocs = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        step_allocs, 0,
        "steady-state training step allocated {step_allocs} times"
    );

    // The fused saliency primitive — one cached forward plus the
    // ideal-label backward through the same workspaces — must be equally
    // clean: it is the serving path's per-batch inner loop.
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..20 {
        net.input_gradient_ws(&x, &mut fws, &mut bws, ideal_label_grad_into);
        checksum += bws.input_grad().get(0, 0);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let saliency_allocs = ALLOC_CALLS.load(Ordering::SeqCst);
    assert!(checksum.is_finite());
    assert_eq!(
        saliency_allocs, 0,
        "steady-state saliency backward allocated {saliency_allocs} times"
    );
}
