//! Deterministic random-number utilities.
//!
//! The whole reproduction pipeline is seed-driven: the simulator, weight
//! initialisation, mini-batch shuffling and forest bootstrapping all derive
//! their randomness from explicit `u64` seeds. Parallel code paths derive
//! *per-item* seeds with [`SplitMix64`], so results are bit-identical
//! regardless of the rayon thread count.

/// SplitMix64 — a tiny, high-quality 64-bit PRNG / seed mixer.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014). Used both as a standalone generator and to
/// derive independent per-item seeds from `(base_seed, index)` pairs.
///
/// ```
/// use diagnet_rng::SplitMix64;
/// let mut rng = SplitMix64::new(42);
/// let a = rng.next_f32();
/// assert!((0.0..1.0).contains(&a));
/// // Per-item seeds for deterministic parallel fan-out:
/// assert_eq!(SplitMix64::derive(42, 7), SplitMix64::derive(42, 7));
/// assert_ne!(SplitMix64::derive(42, 7), SplitMix64::derive(42, 8));
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa bits of uniformly distributed randomness.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_below: bound must be positive");
        // Multiplicative range reduction (Lemire); bias is < 2^-64 per call,
        // irrelevant for simulation purposes.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        // Avoid ln(0) by flooring u1 at the smallest positive step.
        let u1 = self.next_f32().max(1e-7);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Log-normal sample: `exp(N(mu, sigma))`. Heavy-tailed noise for the
    /// network simulator.
    pub fn log_normal(&mut self, mu: f32, sigma: f32) -> f32 {
        self.normal_with(mu, sigma).exp()
    }

    /// Exponential sample with rate `lambda`.
    pub fn exponential(&mut self, lambda: f32) -> f32 {
        -((1.0 - self.next_f32()).max(1e-7)).ln() / lambda
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }

    /// Derive an independent seed for item `index` under `base` —
    /// the canonical way to fan out determinism across rayon tasks.
    pub fn derive(base: u64, index: u64) -> u64 {
        let mut mixer = SplitMix64::new(base ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        mixer.next_u64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `n` distinct indices from `[0, bound)` (order not specified).
    ///
    /// # Panics
    /// Panics if `n > bound`.
    pub fn sample_indices(&mut self, bound: usize, n: usize) -> Vec<usize> {
        assert!(n <= bound, "sample_indices: n ({n}) > bound ({bound})");
        let mut idx: Vec<usize> = (0..bound).collect();
        // Partial Fisher–Yates: after i swaps the first i entries are a
        // uniform sample without replacement.
        for i in 0..n {
            let j = i + self.next_below(bound - i);
            idx.swap(i, j);
        }
        idx.truncate(n);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.next_below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = SplitMix64::new(11);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SplitMix64::new(13);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let f = hits as f32 / 20_000.0;
        assert!((f - 0.3).abs() < 0.02, "freq = {f}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(17);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice untouched"
        );
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SplitMix64::new(19);
        let s = rng.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 30);
        assert!(s.iter().all(|&v| v < 100));
    }

    #[test]
    fn derive_is_stable_and_spreads() {
        assert_eq!(SplitMix64::derive(5, 0), SplitMix64::derive(5, 0));
        assert_ne!(SplitMix64::derive(5, 0), SplitMix64::derive(5, 1));
        assert_ne!(SplitMix64::derive(5, 0), SplitMix64::derive(6, 0));
    }

    #[test]
    fn exponential_positive_mean_close() {
        let mut rng = SplitMix64::new(23);
        let n = 30_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
