//! Fault scenarios and their schedule.
//!
//! The paper injected faults "uniformly distributed between regions and
//! families to avoid bias towards more frequent root causes", sometimes
//! with "multiple faults at the same time" (§IV-A(e)), spread over two
//! weeks at "different hours of day and days of week". The
//! [`ScenarioGenerator`] reproduces that schedule: a deterministic
//! round-robin over (family × region) combinations for faulty scenarios,
//! random hours of day, and an optional second simultaneous fault.

use crate::fault::{Fault, FaultFamily, ALL_FAULT_FAMILIES};
use crate::region::{Region, FAULT_REGIONS};
use diagnet_rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// How a scenario was built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// No injected faults.
    Nominal,
    /// A single injected fault.
    SingleFault,
    /// Two simultaneous injected faults.
    MultiFault,
}

/// One experimental condition: the set of active faults and the time of day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Active faults (empty for nominal scenarios).
    pub faults: Vec<Fault>,
    /// UTC hour of day (fractional, 0–24) — drives diurnal congestion.
    pub hour_utc: f64,
    /// Scenario kind.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// A fault-free scenario at a given hour.
    pub fn nominal(hour_utc: f64) -> Self {
        Scenario {
            faults: Vec::new(),
            hour_utc,
            kind: ScenarioKind::Nominal,
        }
    }

    /// A scenario with explicit faults.
    pub fn with_faults(faults: Vec<Fault>, hour_utc: f64) -> Self {
        let kind = match faults.len() {
            0 => ScenarioKind::Nominal,
            1 => ScenarioKind::SingleFault,
            _ => ScenarioKind::MultiFault,
        };
        Scenario {
            faults,
            hour_utc,
            kind,
        }
    }
}

/// Deterministic scenario schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioGenerator {
    /// Regions where faults may be injected (paper: the five regions
    /// involving services).
    pub fault_regions: Vec<Region>,
    /// Injectable fault families.
    pub families: Vec<FaultFamily>,
    /// Fraction of scenarios that carry at least one fault.
    pub faulty_fraction: f32,
    /// Probability that a faulty scenario carries a second simultaneous
    /// fault.
    pub multi_fault_prob: f32,
}

impl Default for ScenarioGenerator {
    fn default() -> Self {
        ScenarioGenerator {
            fault_regions: FAULT_REGIONS.to_vec(),
            families: ALL_FAULT_FAMILIES.to_vec(),
            faulty_fraction: 0.5,
            multi_fault_prob: 0.15,
        }
    }
}

impl ScenarioGenerator {
    /// The paper's schedule.
    pub fn standard() -> Self {
        ScenarioGenerator::default()
    }

    /// Number of distinct (family × region) combinations.
    pub fn n_combinations(&self) -> usize {
        self.fault_regions.len() * self.families.len()
    }

    /// The `i`-th combination of the uniform round-robin.
    fn combination(&self, i: usize) -> Fault {
        let i = i % self.n_combinations();
        let family = self.families[i % self.families.len()];
        let region = self.fault_regions[(i / self.families.len()) % self.fault_regions.len()];
        Fault::new(family, region)
    }

    /// Generate scenario `index` under `base_seed`. Deterministic; distinct
    /// indices explore hours of day uniformly and cycle fault combinations
    /// round-robin so coverage is uniform by construction.
    pub fn generate(&self, index: u64, base_seed: u64) -> Scenario {
        let mut rng = SplitMix64::new(SplitMix64::derive(base_seed, index));
        let hour_utc = rng.next_f64() * 24.0;
        if !rng.bernoulli(self.faulty_fraction) {
            return Scenario::nominal(hour_utc);
        }
        // Round-robin over combinations, but only among *faulty* scenarios:
        // derive the combination rank from a per-generator counter hash so
        // the uniform coverage is preserved regardless of which indices
        // happen to be faulty.
        let first = self.combination(rng.next_below(self.n_combinations() * 1024));
        let mut faults = vec![first];
        if rng.bernoulli(self.multi_fault_prob) {
            // Pick a second, distinct combination.
            for _ in 0..16 {
                let second = self.combination(rng.next_below(self.n_combinations() * 1024));
                if second != first {
                    faults.push(second);
                    break;
                }
            }
        }
        Scenario::with_faults(faults, hour_utc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn nominal_constructor() {
        let s = Scenario::nominal(5.5);
        assert_eq!(s.kind, ScenarioKind::Nominal);
        assert!(s.faults.is_empty());
    }

    #[test]
    fn with_faults_derives_kind() {
        let f = Fault::new(FaultFamily::Jitter, Region::Amst);
        assert_eq!(
            Scenario::with_faults(vec![f], 1.0).kind,
            ScenarioKind::SingleFault
        );
        let g = Fault::new(FaultFamily::PacketLoss, Region::Sing);
        assert_eq!(
            Scenario::with_faults(vec![f, g], 1.0).kind,
            ScenarioKind::MultiFault
        );
        assert_eq!(
            Scenario::with_faults(vec![], 1.0).kind,
            ScenarioKind::Nominal
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let g = ScenarioGenerator::standard();
        assert_eq!(g.generate(7, 99), g.generate(7, 99));
        assert_ne!(g.generate(7, 99), g.generate(8, 99));
    }

    #[test]
    fn faulty_fraction_respected() {
        let g = ScenarioGenerator::standard();
        let faulty = (0..2000)
            .filter(|&i| !g.generate(i, 1).faults.is_empty())
            .count() as f32
            / 2000.0;
        assert!((faulty - 0.5).abs() < 0.05, "faulty fraction {faulty}");
    }

    #[test]
    fn fault_coverage_is_uniform() {
        let g = ScenarioGenerator::standard();
        let mut counts: HashMap<(FaultFamily, Region), usize> = HashMap::new();
        for i in 0..6000 {
            for f in &g.generate(i, 3).faults {
                *counts.entry((f.family, f.region)).or_default() += 1;
            }
        }
        assert_eq!(counts.len(), 30, "all 6 families × 5 regions appear");
        let min = *counts.values().min().unwrap() as f32;
        let max = *counts.values().max().unwrap() as f32;
        assert!(max / min < 1.6, "coverage skew: min {min}, max {max}");
    }

    #[test]
    fn multi_fault_scenarios_have_distinct_faults() {
        let g = ScenarioGenerator::standard();
        let mut multi = 0;
        for i in 0..3000 {
            let s = g.generate(i, 5);
            if s.kind == ScenarioKind::MultiFault {
                multi += 1;
                assert_eq!(s.faults.len(), 2);
                assert_ne!(s.faults[0], s.faults[1]);
            }
        }
        assert!(multi > 100, "multi-fault scenarios should occur: {multi}");
    }

    #[test]
    fn hours_cover_the_day() {
        let g = ScenarioGenerator::standard();
        let hours: Vec<f64> = (0..500).map(|i| g.generate(i, 7).hour_utc).collect();
        assert!(hours.iter().any(|&h| h < 6.0));
        assert!(hours.iter().any(|&h| h > 18.0));
        assert!(hours.iter().all(|&h| (0.0..24.0).contains(&h)));
    }

    #[test]
    fn restricted_generator_respects_bounds() {
        let g = ScenarioGenerator {
            fault_regions: vec![Region::Beau],
            families: vec![FaultFamily::ServiceLatency],
            faulty_fraction: 1.0,
            multi_fault_prob: 0.0,
        };
        for i in 0..50 {
            let s = g.generate(i, 11);
            assert_eq!(s.faults.len(), 1);
            assert_eq!(
                s.faults[0],
                Fault::new(FaultFamily::ServiceLatency, Region::Beau)
            );
        }
    }
}
