//! Measurement campaigns over simulated time.
//!
//! The paper collected data "during the last two weeks of December 2019,
//! using different hours of day and days of week to ensure large coverage
//! of traffic and congestion patterns" (§IV-A(e)). A [`Campaign`] models
//! that: simulated days are tiled with fault *windows* (each holding one
//! scenario, possibly nominal), and clients probe on a fixed interval,
//! yielding a time-ordered stream of labelled samples — the shape of data
//! an online analysis service actually ingests.

use crate::dataset::Sample;
use crate::region::Region;
use crate::scenario::{Scenario, ScenarioGenerator};
use crate::service::ServiceId;
use crate::world::World;
use diagnet_rng::SplitMix64;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One fault window: a scenario active during `[start_h, start_h + duration_h)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Campaign-relative start, in hours since the campaign began.
    pub start_h: f64,
    /// Window length in hours.
    pub duration_h: f64,
    /// The scenario active in this window.
    pub scenario: Scenario,
}

/// Campaign configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of simulated days (paper: 14).
    pub days: usize,
    /// Fault windows per day (windows tile each day evenly).
    pub windows_per_day: usize,
    /// Scenario schedule.
    pub generator: ScenarioGenerator,
    /// Master seed.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            days: 14,
            windows_per_day: 8,
            generator: ScenarioGenerator::standard(),
            seed: 0,
        }
    }
}

/// A fully scheduled measurement campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Windows in chronological order, tiling the whole campaign.
    pub windows: Vec<Window>,
}

impl Campaign {
    /// Schedule a campaign: each day is tiled with `windows_per_day` equal
    /// windows; each window gets a scenario from the generator whose
    /// `hour_utc` is aligned with the window's wall-clock start.
    pub fn generate(config: &CampaignConfig) -> Campaign {
        assert!(config.days > 0, "Campaign: need at least one day");
        assert!(
            config.windows_per_day > 0,
            "Campaign: need at least one window per day"
        );
        let duration_h = 24.0 / config.windows_per_day as f64;
        let mut windows = Vec::with_capacity(config.days * config.windows_per_day);
        for day in 0..config.days {
            for slot in 0..config.windows_per_day {
                let index = (day * config.windows_per_day + slot) as u64;
                let mut scenario = config.generator.generate(index, config.seed);
                let start_h = day as f64 * 24.0 + slot as f64 * duration_h;
                // Align the scenario's diurnal clock with the window.
                scenario.hour_utc = start_h.rem_euclid(24.0);
                windows.push(Window {
                    start_h,
                    duration_h,
                    scenario,
                });
            }
        }
        Campaign { windows }
    }

    /// Total campaign length in hours.
    pub fn duration_h(&self) -> f64 {
        self.windows
            .last()
            .map_or(0.0, |w| w.start_h + w.duration_h)
    }

    /// The scenario active at campaign hour `t` (`None` outside the
    /// campaign).
    pub fn scenario_at(&self, t: f64) -> Option<&Scenario> {
        if t < 0.0 {
            return None;
        }
        // Windows tile time uniformly; direct index then guard.
        let idx = self
            .windows
            .binary_search_by(|w| {
                if t < w.start_h {
                    std::cmp::Ordering::Greater
                } else if t >= w.start_h + w.duration_h {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()?;
        Some(&self.windows[idx].scenario)
    }

    /// Run the campaign: every client in `clients` probes every service in
    /// `services` once per `interval_h` hours, producing a time-ordered
    /// sample stream. Deterministic in the campaign seed; parallelised
    /// over probe ticks.
    pub fn run(
        &self,
        world: &World,
        clients: &[Region],
        services: &[ServiceId],
        interval_h: f64,
        seed: u64,
    ) -> Vec<(f64, Sample)> {
        assert!(interval_h > 0.0, "Campaign::run: interval must be positive");
        assert!(
            !clients.is_empty() && !services.is_empty(),
            "Campaign::run: empty participants"
        );
        let n_ticks = (self.duration_h() / interval_h) as usize;
        let per_tick = clients.len() * services.len();
        (0..n_ticks)
            .into_par_iter()
            .flat_map_iter(|tick| {
                let t = tick as f64 * interval_h;
                let scenario = self
                    .scenario_at(t)
                    .cloned()
                    .unwrap_or_else(|| Scenario::nominal(t.rem_euclid(24.0)));
                let world = world.clone();
                let clients = clients.to_vec();
                let services = services.to_vec();
                clients
                    .into_iter()
                    .enumerate()
                    .flat_map(move |(ci, client)| {
                        let scenario = scenario.clone();
                        let world = world.clone();
                        let services = services.clone();
                        let n_services = services.len();
                        services.into_iter().enumerate().map(move |(si, service)| {
                            let unique = (tick * per_tick + ci * n_services + si) as u64;
                            let obs_seed = SplitMix64::derive(seed ^ 0x7131_E11E, unique);
                            (t, world.observe(client, service, &scenario, obs_seed))
                        })
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::ALL_REGIONS;

    fn small_campaign(seed: u64) -> (CampaignConfig, Campaign) {
        let cfg = CampaignConfig {
            days: 2,
            windows_per_day: 4,
            seed,
            ..Default::default()
        };
        let campaign = Campaign::generate(&cfg);
        (cfg, campaign)
    }

    #[test]
    fn windows_tile_the_campaign() {
        let (cfg, campaign) = small_campaign(1);
        assert_eq!(campaign.windows.len(), cfg.days * cfg.windows_per_day);
        assert_eq!(campaign.duration_h(), 48.0);
        // Windows are contiguous and non-overlapping.
        for pair in campaign.windows.windows(2) {
            assert!((pair[0].start_h + pair[0].duration_h - pair[1].start_h).abs() < 1e-9);
        }
    }

    #[test]
    fn scenario_lookup_matches_windows() {
        let (_, campaign) = small_campaign(2);
        for w in &campaign.windows {
            let mid = w.start_h + w.duration_h / 2.0;
            assert_eq!(campaign.scenario_at(mid), Some(&w.scenario));
            assert_eq!(campaign.scenario_at(w.start_h), Some(&w.scenario));
        }
        assert_eq!(campaign.scenario_at(-1.0), None);
        assert_eq!(campaign.scenario_at(48.0), None);
    }

    #[test]
    fn diurnal_clock_aligned() {
        let (_, campaign) = small_campaign(3);
        for w in &campaign.windows {
            assert!((w.scenario.hour_utc - w.start_h.rem_euclid(24.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn hours_of_day_covered() {
        let cfg = CampaignConfig {
            days: 14,
            windows_per_day: 8,
            seed: 4,
            ..Default::default()
        };
        let campaign = Campaign::generate(&cfg);
        let mut hours: Vec<f64> = campaign
            .windows
            .iter()
            .map(|w| w.scenario.hour_utc)
            .collect();
        hours.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(hours[0] < 1.0);
        assert!(*hours.last().unwrap() > 20.0);
    }

    #[test]
    fn run_produces_ordered_deterministic_stream() {
        let (_, campaign) = small_campaign(5);
        let world = World::new();
        let clients = [Region::Amst, Region::Toky];
        let services = [world.catalog.all_ids()[0], world.catalog.all_ids()[4]];
        let run = || campaign.run(&world, &clients, &services, 3.0, 5);
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), (48.0f64 / 3.0) as usize * 2 * 2);
        // Time-ordered.
        for pair in a.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        // Samples carry the active window's faults.
        for (t, sample) in &a {
            let expected = campaign.scenario_at(*t).unwrap();
            assert_eq!(sample.faults, expected.faults);
        }
    }

    #[test]
    fn stream_contains_faulty_samples() {
        let cfg = CampaignConfig {
            days: 4,
            windows_per_day: 6,
            seed: 7,
            ..Default::default()
        };
        let campaign = Campaign::generate(&cfg);
        let world = World::new();
        let stream = campaign.run(&world, &ALL_REGIONS, &world.catalog.all_ids(), 4.0, 7);
        let faulty = stream.iter().filter(|(_, s)| s.label.is_faulty()).count();
        assert!(
            faulty > 10,
            "stream should contain labelled failures: {faulty}"
        );
    }
}
