//! Dataset generation and splitting.
//!
//! Reproduces the paper's data-collection protocol (§IV-A):
//!
//! * clients in every region periodically probe all landmarks and visit the
//!   mock-up services under a scheduled fault scenario;
//! * samples are labelled nominal/faulty from QoE + fault ground truth;
//! * 80 % of each kind goes to training, 20 % to testing — except samples
//!   whose fault lies near a *hidden* landmark (EAST, GRAV, SEAT), which
//!   are "forced to appear only in the testing set" (§IV-A(d));
//! * training feature vectors only expose the seven known landmarks.
//!
//! Generation fans out over scenarios with rayon; every observation derives
//! its own seed, so the dataset is identical at any thread count.

use crate::metrics::FeatureSchema;
use crate::region::{Region, ALL_REGIONS};
use crate::scenario::ScenarioGenerator;
use crate::service::ServiceId;
use crate::stream::DatasetStream;
use crate::world::{Observation, World};
use diagnet_rng::SplitMix64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed generation-configuration errors (the old path `assert!`ed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// `client_regions` was empty: no client would probe anything.
    NoClientRegions,
    /// `services` was empty: no service visits to observe.
    NoServices,
    /// A chunked API was asked for chunks of zero samples.
    ZeroChunkSize,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoClientRegions => write!(f, "no client regions configured"),
            SimError::NoServices => write!(f, "no services configured"),
            SimError::ZeroChunkSize => write!(f, "chunk size must be positive"),
        }
    }
}

impl std::error::Error for SimError {}

/// A labelled sample; alias of [`Observation`] for readability at API
/// boundaries.
pub type Sample = Observation;

/// Configuration of a generation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of fault scenarios to schedule.
    pub n_scenarios: usize,
    /// Regions with active clients (paper default: all ten; Fig. 8 varies
    /// this for the client-diversity experiment).
    pub client_regions: Vec<Region>,
    /// Services visited by every client in every scenario.
    pub services: Vec<ServiceId>,
    /// Scenario schedule.
    pub generator: ScenarioGenerator,
    /// Master seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// A small configuration for unit tests (≈ hundreds of samples).
    pub fn small(world: &World, seed: u64) -> Self {
        DatasetConfig {
            n_scenarios: 40,
            client_regions: ALL_REGIONS.to_vec(),
            services: world.catalog.all_ids(),
            generator: ScenarioGenerator::standard(),
            seed,
        }
    }

    /// The evaluation-scale configuration (tens of thousands of samples,
    /// matching the paper's order of magnitude when scaled by
    /// `n_scenarios`).
    pub fn standard(world: &World, n_scenarios: usize, seed: u64) -> Self {
        DatasetConfig {
            n_scenarios,
            client_regions: ALL_REGIONS.to_vec(),
            services: world.catalog.all_ids(),
            generator: ScenarioGenerator::standard(),
            seed,
        }
    }

    /// Total number of samples this configuration will produce.
    pub fn n_samples(&self) -> usize {
        self.n_scenarios * self.client_regions.len() * self.services.len()
    }
}

/// A generated set of labelled samples plus the full measurement schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// The full (all-landmark) schema the sample features are laid out in.
    pub schema: FeatureSchema,
    /// Samples in generation order.
    pub samples: Vec<Sample>,
}

/// A train/test split following the paper's hidden-landmark protocol.
#[derive(Debug, Clone)]
pub struct SplitDataset {
    /// Training samples (no hidden-landmark faults).
    pub train: Dataset,
    /// Test samples (includes *all* hidden-landmark fault samples).
    pub test: Dataset,
}

impl Dataset {
    /// Generate a dataset: a thin `collect()` over [`DatasetStream`], the
    /// chunk-oriented generator in [`crate::stream`]. Parallelised within
    /// each chunk; deterministic in `config.seed` (every sample derives its
    /// own seed from its global index, so chunk boundaries and thread
    /// counts cannot change values).
    pub fn generate(world: &World, config: &DatasetConfig) -> Result<Dataset, SimError> {
        let stream = DatasetStream::new(world, config, crate::stream::DEFAULT_CHUNK_SIZE)?;
        let mut samples = Vec::with_capacity(config.n_samples());
        for chunk in stream {
            samples.extend(chunk.samples);
        }
        Ok(Dataset {
            schema: world.schema.clone(),
            samples,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Count of nominal samples.
    pub fn n_nominal(&self) -> usize {
        self.samples.iter().filter(|s| !s.label.is_faulty()).count()
    }

    /// Count of faulty samples.
    pub fn n_faulty(&self) -> usize {
        self.samples.iter().filter(|s| s.label.is_faulty()).count()
    }

    /// Samples restricted to one service.
    pub fn filter_service(&self, service: ServiceId) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            samples: self
                .samples
                .iter()
                .filter(|s| s.service == service)
                .cloned()
                .collect(),
        }
    }

    /// Samples restricted to a set of services.
    pub fn filter_services(&self, services: &[ServiceId]) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            samples: self
                .samples
                .iter()
                .filter(|s| services.contains(&s.service))
                .cloned()
                .collect(),
        }
    }

    /// Samples whose fault was injected near a hidden ("new") landmark.
    pub fn filter_near_hidden(&self, hidden: bool) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            samples: self
                .samples
                .iter()
                .filter(|s| s.label.is_near_hidden_landmark() == Some(hidden))
                .cloned()
                .collect(),
        }
    }

    /// Feature rows projected into `schema` (missing landmarks filled with
    /// `fill`), plus coarse-family labels.
    pub fn to_rows(&self, schema: &FeatureSchema, fill: f32) -> (Vec<Vec<f32>>, Vec<usize>) {
        let rows = self
            .samples
            .iter()
            .map(|s| schema.project_from(&self.schema, &s.features, fill))
            .collect();
        let labels = self
            .samples
            .iter()
            .map(|s| s.label.family_index())
            .collect();
        (rows, labels)
    }

    /// Split into train/test with the paper's protocol: samples whose
    /// root cause is near a hidden landmark go to test unconditionally;
    /// the rest is split `train_fraction` / `1 − train_fraction`,
    /// stratified by nominal/faulty.
    pub fn split(&self, train_fraction: f32, seed: u64) -> SplitDataset {
        assert!(
            (0.0..1.0).contains(&train_fraction),
            "train_fraction must be in [0, 1)"
        );
        let mut rng = SplitMix64::new(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        // Stratify: nominal vs faulty (hidden-fault samples forced to test).
        let mut strata: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for (i, s) in self.samples.iter().enumerate() {
            if s.label.is_near_hidden_landmark() == Some(true) {
                test.push(i);
            } else {
                strata[s.label.is_faulty() as usize].push(i);
            }
        }
        for stratum in &mut strata {
            rng.shuffle(stratum);
            let n_train = (stratum.len() as f32 * train_fraction).round() as usize;
            train.extend_from_slice(&stratum[..n_train]);
            test.extend_from_slice(&stratum[n_train..]);
        }
        train.sort_unstable();
        test.sort_unstable();
        let pick = |idx: &[usize]| Dataset {
            schema: self.schema.clone(),
            samples: idx.iter().map(|&i| self.samples[i].clone()).collect(),
        };
        SplitDataset {
            train: pick(&train),
            test: pick(&test),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::HIDDEN_LANDMARKS;
    use crate::world::Label;

    fn small_dataset(seed: u64) -> (World, Dataset) {
        let world = World::new();
        let cfg = DatasetConfig::small(&world, seed);
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        (world, ds)
    }

    #[test]
    fn empty_configs_are_rejected_with_typed_errors() {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 1);
        cfg.client_regions = Vec::new();
        assert_eq!(
            Dataset::generate(&world, &cfg).err(),
            Some(SimError::NoClientRegions)
        );
        let mut cfg = DatasetConfig::small(&world, 1);
        cfg.services = Vec::new();
        assert_eq!(
            Dataset::generate(&world, &cfg).err(),
            Some(SimError::NoServices)
        );
    }

    #[test]
    fn generation_produces_expected_count() {
        let (_, ds) = small_dataset(1);
        assert_eq!(ds.len(), 40 * 10 * 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = small_dataset(5);
        let (_, b) = small_dataset(5);
        assert_eq!(a.samples, b.samples);
        let (_, c) = small_dataset(6);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn mix_of_nominal_and_faulty() {
        let (_, ds) = small_dataset(2);
        let faulty_frac = ds.n_faulty() as f32 / ds.len() as f32;
        // Paper: 30k faulty / 243k total ≈ 12 %. Our schedule injects
        // faults in 50 % of scenarios but most faults don't degrade most
        // (client, service) pairs; expect a small but solid faulty share.
        assert!(
            faulty_frac > 0.02,
            "faulty fraction too small: {faulty_frac}"
        );
        assert!(
            faulty_frac < 0.5,
            "faulty fraction too large: {faulty_frac}"
        );
    }

    #[test]
    fn faulty_labels_cover_multiple_families_and_regions() {
        let (_, ds) = small_dataset(3);
        let mut families = std::collections::HashSet::new();
        let mut regions = std::collections::HashSet::new();
        for s in &ds.samples {
            if let Label::Faulty { family, region, .. } = s.label {
                families.insert(family);
                regions.insert(region);
            }
        }
        assert!(families.len() >= 5, "families seen: {families:?}");
        assert!(regions.len() >= 4, "regions seen: {regions:?}");
    }

    #[test]
    fn split_forces_hidden_faults_into_test() {
        let (_, ds) = small_dataset(4);
        let split = ds.split(0.8, 9);
        for s in &split.train.samples {
            assert_ne!(
                s.label.is_near_hidden_landmark(),
                Some(true),
                "hidden-landmark fault leaked into training"
            );
        }
        let hidden_in_test = split
            .test
            .samples
            .iter()
            .filter(|s| s.label.is_near_hidden_landmark() == Some(true))
            .count();
        let hidden_total = ds
            .samples
            .iter()
            .filter(|s| s.label.is_near_hidden_landmark() == Some(true))
            .count();
        assert_eq!(hidden_in_test, hidden_total);
        assert!(
            hidden_total > 0,
            "dataset should contain hidden-landmark faults"
        );
    }

    #[test]
    fn split_is_partition() {
        let (_, ds) = small_dataset(7);
        let split = ds.split(0.8, 1);
        assert_eq!(split.train.len() + split.test.len(), ds.len());
    }

    #[test]
    fn split_ratio_approximate_on_visible_samples() {
        let (_, ds) = small_dataset(8);
        let split = ds.split(0.8, 2);
        let visible: Vec<&Sample> = ds
            .samples
            .iter()
            .filter(|s| s.label.is_near_hidden_landmark() != Some(true))
            .collect();
        let frac = split.train.len() as f32 / visible.len() as f32;
        assert!((frac - 0.8).abs() < 0.02, "train fraction {frac}");
    }

    #[test]
    fn to_rows_projects_into_training_schema() {
        let (_, ds) = small_dataset(9);
        let known = FeatureSchema::known();
        let (rows, labels) = ds.to_rows(&known, 0.0);
        assert_eq!(rows.len(), ds.len());
        assert_eq!(labels.len(), ds.len());
        assert!(rows.iter().all(|r| r.len() == 40));
        assert!(labels.iter().all(|&l| l < 7));
    }

    #[test]
    fn hidden_landmarks_constant_matches_schema() {
        let full = FeatureSchema::full();
        let known = FeatureSchema::known();
        assert_eq!(
            full.n_landmarks() - known.n_landmarks(),
            HIDDEN_LANDMARKS.len()
        );
    }

    #[test]
    fn client_diversity_restriction() {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 11);
        cfg.client_regions = vec![Region::Amst, Region::Toky];
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        assert_eq!(ds.len(), 40 * 2 * 10);
        assert!(ds
            .samples
            .iter()
            .all(|s| s.client_region == Region::Amst || s.client_region == Region::Toky));
    }

    #[test]
    fn filters_work() {
        let (world, ds) = small_dataset(12);
        let sid = world.catalog.by_name("single").unwrap().id;
        let only = ds.filter_service(sid);
        assert!(only.samples.iter().all(|s| s.service == sid));
        assert_eq!(only.len(), ds.len() / 10);
        let near_hidden = ds.filter_near_hidden(true);
        assert!(near_hidden
            .samples
            .iter()
            .all(|s| s.label.is_near_hidden_landmark() == Some(true)));
    }
}
