//! Wide-area path model.
//!
//! Produces the *nominal* (fault-free) conditions of a network path between
//! two regions at a given time of day. The model is intentionally simple
//! but captures the effects that matter to root-cause analysis:
//!
//! * **propagation delay** from great-circle distance (≈1 ms of RTT per
//!   100 km of fibre), plus a peering penalty when the endpoints belong to
//!   different cloud providers;
//! * **diurnal congestion**: traffic peaks in the local evening of each
//!   endpoint, inflating RTT and deflating available bandwidth — this is
//!   the background "constant stream of anomalies" the paper's *anomaly
//!   disentanglement* property is about (§II-B);
//! * **heavy-tailed noise** (log-normal) on every quantity, so outliers
//!   occur even on healthy paths;
//! * **TCP coupling**: the *measured* throughput of a path is capped by the
//!   Mathis et al. formula `BW ≈ C·MSS/(RTT·√loss)`, so latency and loss
//!   faults degrade measured bandwidth too — DiagNet's coarse classifier
//!   must learn to undo exactly this entanglement (§III-B).

use crate::region::Region;
use diagnet_rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// Conditions of one directed network path at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathConditions {
    /// Round-trip time, milliseconds.
    pub rtt_ms: f32,
    /// RTT jitter, milliseconds.
    pub jitter_ms: f32,
    /// Packet loss ratio in `[0, 1]`.
    pub loss: f32,
    /// Raw downstream capacity, Mbit/s (before TCP effects).
    pub down_capacity_mbps: f32,
    /// Raw upstream capacity, Mbit/s (before TCP effects).
    pub up_capacity_mbps: f32,
}

impl PathConditions {
    /// Mathis TCP throughput cap (Mbit/s) for the current RTT and loss,
    /// assuming `n_conns` parallel connections (browsers open several).
    pub fn mathis_cap_mbps(&self, n_conns: f32) -> f32 {
        // C·MSS/(RTT·√p): C ≈ 1.22, MSS = 1460 B.
        let rtt_s = (self.rtt_ms.max(0.1)) / 1000.0;
        let p = self.loss.max(1e-6);
        let single = 1.22 * 1460.0 * 8.0 / (rtt_s * p.sqrt()) / 1e6;
        single * n_conns
    }

    /// Measured download throughput (Mbit/s): capacity gated by TCP.
    pub fn effective_down_mbps(&self) -> f32 {
        self.down_capacity_mbps
            .min(self.mathis_cap_mbps(MEASURE_CONNS))
    }

    /// Measured upload throughput (Mbit/s): capacity gated by TCP.
    pub fn effective_up_mbps(&self) -> f32 {
        self.up_capacity_mbps
            .min(self.mathis_cap_mbps(MEASURE_CONNS))
    }

    /// Time (seconds) to transfer `kbytes` kilobytes downstream, including
    /// `setup_rtts` round trips of protocol handshakes and a jitter-induced
    /// retransmission penalty.
    pub fn download_time_s(&self, kbytes: f32, setup_rtts: f32) -> f32 {
        self.transfer_time_s(kbytes, setup_rtts, false)
    }

    /// Time (seconds) to transfer `kbytes` kilobytes upstream.
    pub fn upload_time_s(&self, kbytes: f32, setup_rtts: f32) -> f32 {
        self.transfer_time_s(kbytes, setup_rtts, true)
    }

    /// Shared transfer-time model: protocol handshakes cost `setup_rtts`
    /// round trips (inflated by jitter), then the payload streams at the
    /// TCP-effective rate.
    pub fn transfer_time_s(&self, kbytes: f32, setup_rtts: f32, upstream: bool) -> f32 {
        let bw = if upstream {
            self.effective_up_mbps()
        } else {
            self.effective_down_mbps()
        };
        let transfer = kbytes * 8.0 / 1000.0 / bw.max(0.05); // kB → Mbit, / Mbit/s
        let handshake = setup_rtts * (self.rtt_ms + 0.5 * self.jitter_ms) / 1000.0;
        transfer + handshake
    }
}

/// Number of parallel TCP connections assumed for throughput measurements.
const MEASURE_CONNS: f32 = 6.0;

/// Tunable parameters of the nominal path model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkParams {
    /// Fixed per-path overhead added to every RTT, ms.
    pub base_rtt_ms: f32,
    /// RTT milliseconds added per 100 km of great-circle distance.
    pub ms_per_100km: f32,
    /// Extra RTT when endpoints are operated by different providers, ms.
    pub peering_penalty_ms: f32,
    /// Same-provider path capacity, Mbit/s.
    pub intra_provider_mbps: f32,
    /// Cross-provider path capacity, Mbit/s.
    pub inter_provider_mbps: f32,
    /// Additional capacity cap for intercontinental paths (> 8000 km).
    pub intercontinental_mbps: f32,
    /// Peak-hour congestion amplitude (0.15 → RTT +15 %, capacity −15 %).
    pub congestion_amplitude: f32,
    /// σ of the log-normal noise applied to RTT and bandwidth.
    pub noise_sigma: f32,
    /// Nominal loss ratio scale (per-path losses are exponential around it).
    pub base_loss: f32,
    /// Probability that a sampled path observation carries a *spurious*
    /// transient anomaly unrelated to any injected fault — the paper's
    /// "constant stream of anomalies" (§II-B) that a root-cause model must
    /// disentangle from actual causes.
    pub anomaly_prob: f32,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            base_rtt_ms: 4.0,
            ms_per_100km: 1.0,
            peering_penalty_ms: 8.0,
            intra_provider_mbps: 400.0,
            inter_provider_mbps: 180.0,
            intercontinental_mbps: 110.0,
            congestion_amplitude: 0.18,
            noise_sigma: 0.08,
            base_loss: 3e-4,
            anomaly_prob: 0.06,
        }
    }
}

/// The nominal (fault-free) wide-area path model.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct LinkModel {
    /// Model parameters.
    pub params: LinkParams,
}

impl LinkModel {
    /// Build a model with explicit parameters.
    pub fn new(params: LinkParams) -> Self {
        LinkModel { params }
    }

    /// Deterministic expected RTT (ms) of the path `from → to`, before
    /// congestion and noise. Used both by sampling and by the QoE baseline.
    pub fn expected_rtt_ms(&self, from: Region, to: Region) -> f32 {
        let p = &self.params;
        if from == to {
            return p.base_rtt_ms * 0.5;
        }
        let mut rtt = p.base_rtt_ms + (from.distance_km(to) as f32 / 100.0) * p.ms_per_100km;
        if from.provider() != to.provider() {
            rtt += p.peering_penalty_ms;
        }
        rtt
    }

    /// Deterministic expected capacity (Mbit/s) of the path `from → to`.
    pub fn expected_capacity_mbps(&self, from: Region, to: Region) -> f32 {
        let p = &self.params;
        if from == to {
            return p.intra_provider_mbps * 2.0;
        }
        let mut cap = if from.provider() == to.provider() {
            p.intra_provider_mbps
        } else {
            p.inter_provider_mbps
        };
        if from.distance_km(to) > 8000.0 {
            cap = cap.min(p.intercontinental_mbps);
        }
        cap
    }

    /// Diurnal congestion factor ≥ 1 for a path at UTC hour `hour`
    /// (fractional). Peaks around 20:00 local time at each endpoint.
    pub fn congestion_factor(&self, from: Region, to: Region, hour_utc: f64) -> f32 {
        let peak = |r: Region| {
            let local = (hour_utc + r.utc_offset_hours()).rem_euclid(24.0);
            // Raised cosine centred on 20:00, width ~6 h.
            let dist = (local - 20.0).abs().min(24.0 - (local - 20.0).abs());
            if dist < 6.0 {
                0.5 * (1.0 + (std::f64::consts::PI * dist / 6.0).cos())
            } else {
                0.0
            }
        };
        let intensity = 0.5 * (peak(from) + peak(to)) as f32;
        1.0 + self.params.congestion_amplitude * intensity
    }

    /// Expected nominal conditions (no noise) — the deterministic baseline
    /// used for QoE thresholds.
    pub fn expected_conditions(&self, from: Region, to: Region) -> PathConditions {
        let cap = self.expected_capacity_mbps(from, to);
        let rtt = self.expected_rtt_ms(from, to);
        PathConditions {
            rtt_ms: rtt,
            jitter_ms: 0.5 + 0.03 * rtt,
            loss: self.params.base_loss,
            down_capacity_mbps: cap,
            up_capacity_mbps: cap * 0.8,
        }
    }

    /// Sample the nominal conditions of `from → to` at `hour_utc`, using
    /// `rng` for congestion noise.
    pub fn sample(
        &self,
        from: Region,
        to: Region,
        hour_utc: f64,
        rng: &mut SplitMix64,
    ) -> PathConditions {
        let p = &self.params;
        let expected = self.expected_conditions(from, to);
        let congestion = self.congestion_factor(from, to, hour_utc);
        let rtt_noise = rng.log_normal(0.0, p.noise_sigma);
        let bw_noise = rng.log_normal(0.0, p.noise_sigma);
        let jitter_noise = rng.log_normal(0.0, p.noise_sigma * 2.0);
        let rtt = expected.rtt_ms * congestion * rtt_noise;
        let mut cond = PathConditions {
            rtt_ms: rtt,
            jitter_ms: (0.5 + 0.03 * rtt) * jitter_noise,
            loss: p.base_loss * rng.exponential(1.0).max(0.05),
            down_capacity_mbps: expected.down_capacity_mbps / congestion * bw_noise,
            up_capacity_mbps: expected.up_capacity_mbps / congestion * bw_noise,
        };
        // Spurious transient anomalies: a random drop in bandwidth here, a
        // latency spike there — uncorrelated with injected faults.
        if rng.bernoulli(p.anomaly_prob) {
            match rng.next_below(4) {
                0 => cond.rtt_ms *= rng.uniform(1.5, 3.0),
                1 => cond.jitter_ms += rng.uniform(10.0, 60.0),
                2 => cond.loss += rng.uniform(0.004, 0.025),
                _ => {
                    let dip = rng.uniform(0.2, 0.6);
                    cond.down_capacity_mbps *= dip;
                    cond.up_capacity_mbps *= dip;
                }
            }
        }
        cond
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::ALL_REGIONS;

    #[test]
    fn rtt_grows_with_distance() {
        let m = LinkModel::default();
        let near = m.expected_rtt_ms(Region::Amst, Region::Lond);
        let far = m.expected_rtt_ms(Region::Seat, Region::Sydn);
        assert!(near < 25.0, "AMST-LOND expected {near} ms");
        assert!(far > 100.0, "SEAT-SYDN expected {far} ms");
    }

    #[test]
    fn same_region_is_fast() {
        let m = LinkModel::default();
        assert!(m.expected_rtt_ms(Region::Seat, Region::Seat) < 5.0);
        assert!(m.expected_capacity_mbps(Region::Seat, Region::Seat) > 400.0);
    }

    #[test]
    fn peering_penalty_applies_across_providers() {
        let m = LinkModel::default();
        // BEAU (Bravo) and EAST (Alpha) are geographically close; the
        // cross-provider penalty should be visible against the same pair's
        // distance-only baseline.
        let rtt = m.expected_rtt_ms(Region::Beau, Region::East);
        let dist_only = m.params.base_rtt_ms
            + (Region::Beau.distance_km(Region::East) as f32 / 100.0) * m.params.ms_per_100km;
        assert!((rtt - dist_only - m.params.peering_penalty_ms).abs() < 1e-4);
    }

    #[test]
    fn congestion_peaks_in_the_evening() {
        let m = LinkModel::default();
        // 20:00 in Amsterdam = 19:00 UTC.
        let peak = m.congestion_factor(Region::Amst, Region::Amst, 19.0);
        let trough = m.congestion_factor(Region::Amst, Region::Amst, 7.0);
        assert!(peak > trough);
        assert!((peak - (1.0 + m.params.congestion_amplitude)).abs() < 1e-3);
        assert!((trough - 1.0).abs() < 1e-3);
    }

    #[test]
    fn sampled_conditions_are_positive_and_near_expected() {
        let m = LinkModel::default();
        let mut rng = SplitMix64::new(1);
        for &a in &ALL_REGIONS {
            for &b in &ALL_REGIONS {
                let c = m.sample(a, b, 12.0, &mut rng);
                assert!(
                    c.rtt_ms > 0.0 && c.rtt_ms < 500.0,
                    "{a}->{b} rtt {}",
                    c.rtt_ms
                );
                assert!(c.down_capacity_mbps > 10.0);
                assert!(c.loss >= 0.0 && c.loss < 0.05);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LinkModel::default();
        let c1 = m.sample(Region::Seat, Region::Toky, 3.0, &mut SplitMix64::new(5));
        let c2 = m.sample(Region::Seat, Region::Toky, 3.0, &mut SplitMix64::new(5));
        assert_eq!(c1, c2);
    }

    #[test]
    fn mathis_cap_punishes_loss_and_latency() {
        let base = PathConditions {
            rtt_ms: 50.0,
            jitter_ms: 2.0,
            loss: 3e-4,
            down_capacity_mbps: 200.0,
            up_capacity_mbps: 160.0,
        };
        let lossy = PathConditions { loss: 0.08, ..base };
        let slow = PathConditions {
            rtt_ms: 200.0,
            ..base
        };
        assert!(lossy.effective_down_mbps() < base.effective_down_mbps() / 5.0);
        assert!(slow.effective_down_mbps() < base.effective_down_mbps());
    }

    #[test]
    fn healthy_short_path_is_capacity_bound() {
        // On a short, clean path TCP should not be the bottleneck.
        let c = PathConditions {
            rtt_ms: 10.0,
            jitter_ms: 1.0,
            loss: 1e-4,
            down_capacity_mbps: 400.0,
            up_capacity_mbps: 320.0,
        };
        assert_eq!(c.effective_down_mbps(), 400.0);
    }

    #[test]
    fn download_time_scales_with_size_and_rtt() {
        let c = PathConditions {
            rtt_ms: 100.0,
            jitter_ms: 5.0,
            loss: 1e-4,
            down_capacity_mbps: 100.0,
            up_capacity_mbps: 80.0,
        };
        let small = c.download_time_s(10.0, 2.0);
        let big = c.download_time_s(5000.0, 2.0);
        assert!(big > small);
        // Handshake floor: 2 RTTs ≈ 0.205 s.
        assert!(small >= 0.2);
    }
}
