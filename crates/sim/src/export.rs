//! CSV export of datasets.
//!
//! The JSON form (serde) round-trips losslessly inside the toolchain; CSV
//! is for everything else — pandas, R, spreadsheets. One row per sample:
//! all feature columns (named per the schema), the service, the client
//! region, the PLT, and the ground-truth label columns.

use crate::dataset::Dataset;
use crate::service::ServiceCatalog;
use std::io::Write;

/// Write `dataset` as CSV. Columns:
/// `<feature names...>,service,client,plt_s,label,cause,cause_region`.
///
/// `label` is `nominal` or the coarse family name; `cause` /
/// `cause_region` are empty for nominal samples.
pub fn write_csv<W: Write>(dataset: &Dataset, mut out: W) -> std::io::Result<()> {
    let schema = &dataset.schema;
    let catalog = ServiceCatalog::standard();
    // Header.
    let mut header: Vec<String> = schema
        .features()
        .iter()
        .map(|f| f.name().replace('/', "_"))
        .collect();
    header.extend(
        [
            "service",
            "client",
            "plt_s",
            "label",
            "cause",
            "cause_region",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    writeln!(out, "{}", header.join(","))?;
    // Rows.
    for s in &dataset.samples {
        let mut cells: Vec<String> = s.features.iter().map(|v| format!("{v}")).collect();
        cells.push(catalog.get(s.service).name.to_string());
        cells.push(s.client_region.code().to_string());
        cells.push(format!("{}", s.plt_s));
        match s.label.cause() {
            Some(cause) => {
                cells.push(
                    crate::metrics::ALL_FAMILIES[s.label.family_index()]
                        .name()
                        .to_string(),
                );
                cells.push(cause.name().replace('/', "_"));
                cells.push(
                    s.label
                        .cause_region()
                        .map(|r| r.code().to_string())
                        .unwrap_or_default(),
                );
            }
            None => {
                cells.push("nominal".to_string());
                cells.push(String::new());
                cells.push(String::new());
            }
        }
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use crate::world::World;

    fn sample_csv() -> (Dataset, String) {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 909);
        cfg.n_scenarios = 4;
        let ds = crate::dataset::Dataset::generate(&world, &cfg).expect("generate");
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        (ds, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn header_and_row_counts() {
        let (ds, csv) = sample_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), ds.len() + 1);
        let header: Vec<&str> = lines[0].split(',').collect();
        assert_eq!(header.len(), 55 + 6);
        assert_eq!(header[0], "SEAT_rtt");
        assert_eq!(header[54], "local_conn_count");
        assert_eq!(header[55], "service");
    }

    #[test]
    fn every_row_has_the_same_width() {
        let (_, csv) = sample_csv();
        let widths: Vec<usize> = csv.lines().map(|l| l.split(',').count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn labels_rendered() {
        let (ds, csv) = sample_csv();
        let n_faulty = ds.n_faulty();
        let nominal_rows = csv
            .lines()
            .skip(1)
            .filter(|l| l.contains(",nominal,"))
            .count();
        assert_eq!(nominal_rows, ds.n_nominal());
        if n_faulty > 0 {
            // Faulty rows name a family and a cause region.
            let faulty_line = csv
                .lines()
                .skip(1)
                .find(|l| !l.contains(",nominal,"))
                .expect("a faulty row");
            let cells: Vec<&str> = faulty_line.split(',').collect();
            assert!(!cells[58].is_empty(), "family cell");
            assert!(!cells[60].is_empty(), "cause_region cell");
        }
    }

    #[test]
    fn values_are_parseable_floats() {
        let (_, csv) = sample_csv();
        for line in csv.lines().skip(1).take(20) {
            for cell in line.split(',').take(55) {
                cell.parse::<f32>().expect("feature cell parses as f32");
            }
        }
    }
}
