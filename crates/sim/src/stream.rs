//! Chunk-oriented streaming dataset generation.
//!
//! [`Dataset::generate`] materialises every sample in one `Vec`, which caps
//! experiments far below the paper's "Internet-scale" framing: a million
//! probes at the full 55-feature schema is hundreds of megabytes before
//! training even starts. [`DatasetStream`] produces the *same* samples — in
//! the same order, from the same per-(scenario, region, service) seed
//! derivation — as a deterministic iterator of bounded [`SampleChunk`]s, so
//! generation memory is `O(chunk_size)` regardless of probe count.
//!
//! Determinism contract: sample `u` (global generation index) is produced
//! from `SplitMix64::derive(config.seed ^ 0x5EED_DA7A, u)` exactly as the
//! materialised path does, and scenarios are regenerated per chunk from
//! `config.generator.generate(si, config.seed)`. Chunk boundaries therefore
//! cannot influence sample values: any chunk size yields a bit-identical
//! concatenated dataset, and `Dataset::generate` is now a thin `collect()`
//! adapter over this stream.
//!
//! Within a chunk, samples are generated rayon-parallel; across chunks the
//! iterator is sequential, so peak memory is one chunk plus the per-thread
//! stacks. The stream borrows the world, the client regions and the service
//! list — the per-scenario `world.clone()` / `regions.clone()` /
//! `services.clone()` of the old generation loop are gone.

use crate::dataset::{Dataset, DatasetConfig, Sample, SimError};
use crate::metrics::FeatureSchema;
use crate::scenario::Scenario;
use crate::world::World;
use diagnet_obs::Counter;
use diagnet_rng::SplitMix64;
use rayon::prelude::*;

/// Name of the counter of generated sample chunks.
pub const GEN_CHUNKS_TOTAL: &str = "diagnet_gen_chunks_total";
/// Name of the counter of generated samples.
pub const GEN_SAMPLES_TOTAL: &str = "diagnet_gen_samples_total";

/// Default chunk size: large enough to amortise rayon fan-out, small enough
/// that a chunk of 55-feature samples stays a few megabytes.
pub const DEFAULT_CHUNK_SIZE: usize = 8192;

/// A contiguous run of generated samples.
///
/// `start` is the global generation index of `samples[0]`; concatenating
/// chunks in iteration order reproduces the materialised dataset exactly.
#[derive(Debug, Clone)]
pub struct SampleChunk {
    /// Global index of the first sample in this chunk.
    pub start: usize,
    /// The samples, in generation order.
    pub samples: Vec<Sample>,
}

impl SampleChunk {
    /// Number of samples in the chunk.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A resettable producer of [`SampleChunk`]s.
///
/// Implemented by [`DatasetStream`] (generate on the fly, bounded memory)
/// and [`MaterializedSource`] (re-chunk an existing [`Dataset`]), so
/// consumers — the streaming trainer, exporters, benches — are agnostic to
/// whether the data ever existed in RAM at once.
pub trait SampleSource {
    /// The full measurement schema the sample features are laid out in.
    fn schema(&self) -> &FeatureSchema;

    /// Total number of samples the source will yield per pass.
    fn n_samples(&self) -> usize;

    /// Rewind to the first chunk (the next pass yields identical chunks).
    fn reset(&mut self);

    /// The next chunk, or `None` when the pass is exhausted.
    fn next_chunk(&mut self) -> Option<SampleChunk>;
}

/// Streaming generator: yields the samples of `Dataset::generate(world,
/// config)` as bounded chunks without ever materialising the whole set.
#[derive(Debug)]
pub struct DatasetStream<'a> {
    world: &'a World,
    config: &'a DatasetConfig,
    chunk_size: usize,
    next: usize,
    total: usize,
    per_scenario: usize,
    chunks_total: Counter,
    samples_total: Counter,
}

impl<'a> DatasetStream<'a> {
    /// Create a stream over `config`'s sample space in chunks of
    /// `chunk_size`. Fails on an empty region/service list or a zero chunk
    /// size.
    pub fn new(
        world: &'a World,
        config: &'a DatasetConfig,
        chunk_size: usize,
    ) -> Result<Self, SimError> {
        if config.client_regions.is_empty() {
            return Err(SimError::NoClientRegions);
        }
        if config.services.is_empty() {
            return Err(SimError::NoServices);
        }
        if chunk_size == 0 {
            return Err(SimError::ZeroChunkSize);
        }
        let registry = diagnet_obs::global();
        Ok(DatasetStream {
            world,
            config,
            chunk_size,
            next: 0,
            total: config.n_samples(),
            per_scenario: config.client_regions.len() * config.services.len(),
            chunks_total: registry.counter(GEN_CHUNKS_TOTAL, &[], "sample chunks generated"),
            samples_total: registry.counter(GEN_SAMPLES_TOTAL, &[], "samples generated"),
        })
    }

    /// The configured chunk size (the last chunk of a pass may be shorter).
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Generate samples for global indices `start..end` (rayon-parallel,
    /// deterministic: each sample derives its own seed from its global
    /// index, so thread count and chunk boundaries cannot change values).
    fn generate_range(&self, start: usize, end: usize) -> Vec<Sample> {
        let per_scenario = self.per_scenario;
        let n_services = self.config.services.len();
        let si_first = start / per_scenario;
        let si_last = (end - 1) / per_scenario;
        // Scenarios spanned by this chunk, regenerated deterministically.
        let scenarios: Vec<Scenario> = (si_first..=si_last)
            .map(|si| self.config.generator.generate(si as u64, self.config.seed))
            .collect();
        let world = self.world;
        let regions = &self.config.client_regions;
        let services = &self.config.services;
        let seed = self.config.seed;
        (start..end)
            .into_par_iter()
            .map(|u| {
                let si = u / per_scenario;
                let rest = u % per_scenario;
                let ri = rest / n_services;
                let vi = rest % n_services;
                // Unique per (scenario, region, service): same derivation
                // as the materialised path, keyed by the global index.
                let sample_seed = SplitMix64::derive(seed ^ 0x5EED_DA7A, u as u64);
                world.observe(
                    regions[ri],
                    services[vi],
                    &scenarios[si - si_first],
                    sample_seed,
                )
            })
            .collect()
    }
}

impl Iterator for DatasetStream<'_> {
    type Item = SampleChunk;

    fn next(&mut self) -> Option<SampleChunk> {
        if self.next >= self.total {
            return None;
        }
        let start = self.next;
        let end = (start + self.chunk_size).min(self.total);
        self.next = end;
        let samples = self.generate_range(start, end);
        self.chunks_total.inc();
        self.samples_total.add(samples.len() as u64);
        Some(SampleChunk { start, samples })
    }
}

impl SampleSource for DatasetStream<'_> {
    fn schema(&self) -> &FeatureSchema {
        &self.world.schema
    }

    fn n_samples(&self) -> usize {
        self.total
    }

    fn reset(&mut self) {
        self.next = 0;
    }

    fn next_chunk(&mut self) -> Option<SampleChunk> {
        Iterator::next(self)
    }
}

/// Adapter presenting an already-materialised [`Dataset`] as a
/// [`SampleSource`]: the legacy collect-everything path re-chunked, so
/// streaming consumers accept either representation.
#[derive(Debug)]
pub struct MaterializedSource<'a> {
    dataset: &'a Dataset,
    chunk_size: usize,
    next: usize,
}

impl<'a> MaterializedSource<'a> {
    /// Present `dataset` as chunks of `chunk_size`.
    pub fn new(dataset: &'a Dataset, chunk_size: usize) -> Result<Self, SimError> {
        if chunk_size == 0 {
            return Err(SimError::ZeroChunkSize);
        }
        Ok(MaterializedSource {
            dataset,
            chunk_size,
            next: 0,
        })
    }
}

impl SampleSource for MaterializedSource<'_> {
    fn schema(&self) -> &FeatureSchema {
        &self.dataset.schema
    }

    fn n_samples(&self) -> usize {
        self.dataset.samples.len()
    }

    fn reset(&mut self) {
        self.next = 0;
    }

    fn next_chunk(&mut self) -> Option<SampleChunk> {
        if self.next >= self.dataset.samples.len() {
            return None;
        }
        let start = self.next;
        let end = (start + self.chunk_size).min(self.dataset.samples.len());
        self.next = end;
        Some(SampleChunk {
            start,
            samples: self.dataset.samples[start..end].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;

    fn world_and_config(seed: u64) -> (World, DatasetConfig) {
        let world = World::new();
        let cfg = DatasetConfig::small(&world, seed);
        (world, cfg)
    }

    #[test]
    fn stream_concatenation_matches_materialized() {
        let (world, cfg) = world_and_config(5);
        let materialized = Dataset::generate(&world, &cfg).expect("generate");
        // Several chunk sizes, including a non-divisor of 4000 (= 40·10·10)
        // and one larger than the dataset.
        for chunk_size in [1usize, 97, 256, 4000, 5000] {
            let stream = DatasetStream::new(&world, &cfg, chunk_size).expect("stream");
            let mut samples = Vec::new();
            let mut expect_start = 0usize;
            for chunk in stream {
                assert_eq!(chunk.start, expect_start, "chunk_size {chunk_size}");
                expect_start += chunk.samples.len();
                assert!(chunk.samples.len() <= chunk_size);
                samples.extend(chunk.samples);
            }
            assert_eq!(samples, materialized.samples, "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn stream_resets_to_identical_pass() {
        let (world, cfg) = world_and_config(7);
        let mut stream = DatasetStream::new(&world, &cfg, 301).expect("stream");
        let first: Vec<Sample> = std::iter::from_fn(|| SampleSource::next_chunk(&mut stream))
            .flat_map(|c| c.samples)
            .collect();
        stream.reset();
        let second: Vec<Sample> = std::iter::from_fn(|| SampleSource::next_chunk(&mut stream))
            .flat_map(|c| c.samples)
            .collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), stream.n_samples());
    }

    #[test]
    fn materialized_source_round_trips() {
        let (world, cfg) = world_and_config(9);
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let mut src = MaterializedSource::new(&ds, 97).expect("source");
        assert_eq!(src.n_samples(), ds.len());
        let collected: Vec<Sample> = std::iter::from_fn(|| src.next_chunk())
            .flat_map(|c| c.samples)
            .collect();
        assert_eq!(collected, ds.samples);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 1);
        cfg.client_regions = Vec::new();
        assert_eq!(
            DatasetStream::new(&world, &cfg, 64).err(),
            Some(SimError::NoClientRegions)
        );
        let mut cfg = DatasetConfig::small(&world, 1);
        cfg.services = Vec::new();
        assert_eq!(
            DatasetStream::new(&world, &cfg, 64).err(),
            Some(SimError::NoServices)
        );
        let cfg = DatasetConfig::small(&world, 1);
        assert_eq!(
            DatasetStream::new(&world, &cfg, 0).err(),
            Some(SimError::ZeroChunkSize)
        );
        let ds = Dataset {
            schema: world.schema.clone(),
            samples: Vec::new(),
        };
        assert_eq!(
            MaterializedSource::new(&ds, 0).err(),
            Some(SimError::ZeroChunkSize)
        );
    }

    #[test]
    fn restricted_regions_stream_identically() {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 11);
        cfg.client_regions = vec![Region::Amst, Region::Toky];
        let materialized = Dataset::generate(&world, &cfg).expect("generate");
        let stream = DatasetStream::new(&world, &cfg, 33).expect("stream");
        let samples: Vec<Sample> = stream.flat_map(|c| c.samples).collect();
        assert_eq!(samples, materialized.samples);
    }
}
