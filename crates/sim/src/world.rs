//! The simulated world: clients probing landmarks and visiting services
//! under fault scenarios, producing labelled observations.
//!
//! One [`Observation`] corresponds to one row of the paper's dataset: the
//! `m = 55` feature vector a client collects (5 metrics × 10 landmarks + 5
//! local metrics), the measured QoE, and the ground-truth label derived
//! from fault injection — *nominal* when QoE is not degraded (even if
//! faults are active: §IV-A(e) "we observed that the QoE was not degraded
//! despite the injected fault(s); we flag these samples as nominal"),
//! otherwise the single injected fault that actually explains the
//! degradation.

use crate::fault::Fault;
use crate::link::{LinkModel, PathConditions};
use crate::metrics::{CoarseFamily, FeatureId, FeatureSchema, LandmarkMetric, LocalMetric};
use crate::region::Region;
use crate::scenario::Scenario;
use crate::service::{ServiceCatalog, ServiceId, QOE_DEGRADATION_FACTOR, QOE_SLACK_S};
use diagnet_rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// Ground-truth label of an observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Label {
    /// QoE not degraded (possibly despite active faults).
    Nominal,
    /// QoE degraded; `cause` is the root-cause feature, `family` its
    /// coarse class, `region` the region the fault was injected in.
    Faulty {
        /// The feature identifying the root cause (landmark × metric for
        /// remote causes, local metric for local causes).
        cause: FeatureId,
        /// Coarse fault family (the NN training target).
        family: CoarseFamily,
        /// Region the causing fault was injected in (for local faults, the
        /// client's own region).
        region: Region,
    },
}

impl Label {
    /// Coarse class index used as the NN label (`Nominal` = 0).
    pub fn family_index(&self) -> usize {
        match self {
            Label::Nominal => CoarseFamily::Nominal.index(),
            Label::Faulty { family, .. } => family.index(),
        }
    }

    /// The cause feature, if faulty.
    pub fn cause(&self) -> Option<FeatureId> {
        match self {
            Label::Nominal => None,
            Label::Faulty { cause, .. } => Some(*cause),
        }
    }

    /// True for faulty labels.
    pub fn is_faulty(&self) -> bool {
        matches!(self, Label::Faulty { .. })
    }

    /// Region the causing fault was injected in, if faulty.
    pub fn cause_region(&self) -> Option<Region> {
        match self {
            Label::Nominal => None,
            Label::Faulty { region, .. } => Some(*region),
        }
    }

    /// True when this sample's fault was injected near a landmark hidden
    /// during training (the paper's "new landmark" samples).
    pub fn is_near_hidden_landmark(&self) -> Option<bool> {
        self.cause_region().map(|r| r.is_hidden_landmark())
    }
}

/// One labelled measurement sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Feature vector in the world's full-schema order (m = 55).
    pub features: Vec<f32>,
    /// Ground-truth label.
    pub label: Label,
    /// The service the client visited.
    pub service: ServiceId,
    /// The client's region.
    pub client_region: Region,
    /// Measured page load time, seconds.
    pub plt_s: f32,
    /// Faults active during the observation (ground truth, never shown to
    /// models).
    pub faults: Vec<Fault>,
}

/// Client-local state sampled per observation.
#[derive(Debug, Clone, Copy)]
struct LocalState {
    gw_rtt_ms: f32,
    gw_jitter_ms: f32,
    cpu_load: f32,
    mem_load: f32,
    conn_count: f32,
    /// Extra RTT the gateway adds to every wide-area path.
    gateway_extra_ms: f32,
}

/// The simulated deployment.
///
/// ```
/// use diagnet_sim::{Fault, FaultFamily, Region, Scenario, World};
///
/// let world = World::new();
/// let service = world.catalog.by_name("video.stream").unwrap().id;
/// let outage = Scenario::with_faults(
///     vec![Fault::new(FaultFamily::BandwidthShaping, Region::Seat)],
///     12.0,
/// );
/// let obs = world.observe(Region::Beau, service, &outage, 7);
/// assert_eq!(obs.features.len(), 55);
/// ```
#[derive(Debug, Clone)]
pub struct World {
    /// Wide-area path model.
    pub link_model: LinkModel,
    /// Mock-up services.
    pub catalog: ServiceCatalog,
    /// Full measurement schema (all ten landmarks).
    pub schema: FeatureSchema,
}

impl Default for World {
    fn default() -> Self {
        World {
            link_model: LinkModel::default(),
            catalog: ServiceCatalog::standard(),
            schema: FeatureSchema::full(),
        }
    }
}

/// Minimum deterministic PLT impact (relative to the nominal baseline) for
/// a fault to count as the root cause of a degradation.
const ATTRIBUTION_MIN_RELATIVE_IMPACT: f32 = 0.05;

impl World {
    /// A world with the default link model and standard catalog.
    pub fn new() -> Self {
        World::default()
    }

    fn sample_local_state(
        &self,
        client: Region,
        scenario: &Scenario,
        rng: &mut SplitMix64,
    ) -> LocalState {
        let stress: f32 = scenario
            .faults
            .iter()
            .map(|f| f.cpu_stress_load(client))
            .fold(0.0, f32::max);
        let gw_fault_ms: f32 = scenario
            .faults
            .iter()
            .map(|f| f.gateway_latency_ms(client))
            .sum();
        let base_cpu = rng.uniform(0.03, 0.30);
        let gw_rtt = rng.uniform(1.0, 4.0) + gw_fault_ms * rng.log_normal(0.0, 0.05);
        LocalState {
            gw_rtt_ms: gw_rtt,
            gw_jitter_ms: rng.uniform(0.1, 1.0)
                + if gw_fault_ms > 0.0 {
                    rng.uniform(2.0, 8.0)
                } else {
                    0.0
                },
            cpu_load: (base_cpu + stress).min(1.0),
            mem_load: rng.uniform(0.25, 0.65),
            conn_count: rng.uniform(2.0, 20.0).round(),
            gateway_extra_ms: gw_fault_ms,
        }
    }

    /// Sample the live conditions of the path `client → target` under the
    /// scenario's faults, including the client's gateway penalty.
    fn sample_path(
        &self,
        client: Region,
        target: Region,
        local: &LocalState,
        scenario: &Scenario,
        rng: &mut SplitMix64,
    ) -> PathConditions {
        let mut cond = self
            .link_model
            .sample(client, target, scenario.hour_utc, rng);
        for fault in &scenario.faults {
            fault.apply_to_path(&mut cond, client, target, rng);
        }
        cond.rtt_ms += local.gateway_extra_ms;
        cond.jitter_ms += local.gw_jitter_ms * 0.5;
        cond
    }

    /// Deterministic (expected, noise-free) path conditions under an
    /// arbitrary fault subset — the comparable evaluations used for QoE
    /// baselines and root-cause attribution.
    fn expected_path(
        &self,
        client: Region,
        target: Region,
        faults: &[&Fault],
        gateway_extra_ms: f32,
    ) -> PathConditions {
        let mut cond = self.link_model.expected_conditions(client, target);
        for fault in faults {
            fault.apply_to_path_expected(&mut cond, client, target);
        }
        cond.rtt_ms += gateway_extra_ms;
        cond
    }

    /// Deterministic (expected, noise-free) PLT under a fault subset.
    /// Public so experiments can compute *relevant fault sets* (Fig. 10
    /// distinguishes services hurt by one, the other, or both injected
    /// faults).
    pub fn expected_plt(&self, client: Region, service: ServiceId, faults: &[&Fault]) -> f32 {
        let gw: f32 = faults.iter().map(|f| f.gateway_latency_ms(client)).sum();
        let cpu: f32 = faults
            .iter()
            .map(|f| f.cpu_stress_load(client))
            .fold(0.15, f32::max);
        self.catalog
            .get(service)
            .page_load_time_s(client, cpu, |origin| {
                self.expected_path(client, origin, faults, gw)
            })
    }

    /// The fault-free deterministic PLT baseline for `(client, service)`.
    pub fn nominal_plt(&self, client: Region, service: ServiceId) -> f32 {
        self.expected_plt(client, service, &[])
    }

    /// Attribute a degradation to the injected fault whose removal most
    /// reduces the deterministic PLT; `None` when no fault meaningfully
    /// contributes (spurious degradation → nominal label).
    fn attribute_cause<'a>(
        &self,
        client: Region,
        service: ServiceId,
        faults: &'a [Fault],
    ) -> Option<&'a Fault> {
        if faults.is_empty() {
            return None;
        }
        let all: Vec<&Fault> = faults.iter().collect();
        let plt_all = self.expected_plt(client, service, &all);
        let nominal = self.nominal_plt(client, service);
        let mut best: Option<(&Fault, f32)> = None;
        for (i, fault) in faults.iter().enumerate() {
            let without: Vec<&Fault> = faults
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, f)| f)
                .collect();
            let impact = plt_all - self.expected_plt(client, service, &without);
            if best.is_none_or(|(_, b)| impact > b) {
                best = Some((fault, impact));
            }
        }
        let threshold = ATTRIBUTION_MIN_RELATIVE_IMPACT * nominal;
        best.and_then(|(f, impact)| if impact > threshold { Some(f) } else { None })
    }

    /// Produce one labelled observation: a client in `client` probes all
    /// ten landmarks, visits `service`, and the QoE/ground-truth label is
    /// derived. Fully deterministic in `seed`.
    pub fn observe(
        &self,
        client: Region,
        service: ServiceId,
        scenario: &Scenario,
        seed: u64,
    ) -> Observation {
        let mut rng = SplitMix64::new(seed);
        let local = self.sample_local_state(client, scenario, &mut rng);

        // 1. Probe every landmark.
        let mut features = vec![0.0f32; self.schema.n_features()];
        for (li, &landmark) in self.schema.landmarks().iter().enumerate() {
            let cond = self.sample_path(client, landmark, &local, scenario, &mut rng);
            let base = li * crate::metrics::K_LANDMARK_METRICS;
            features[base + LandmarkMetric::Rtt.index()] = cond.rtt_ms;
            features[base + LandmarkMetric::DownBw.index()] = cond.effective_down_mbps();
            features[base + LandmarkMetric::UpBw.index()] = cond.effective_up_mbps();
            features[base + LandmarkMetric::Jitter.index()] = cond.jitter_ms;
            features[base + LandmarkMetric::LossRetrans.index()] = cond.loss;
        }
        // 2. Local metrics.
        let local_base = self.schema.n_landmarks() * crate::metrics::K_LANDMARK_METRICS;
        features[local_base + LocalMetric::GatewayRtt.index()] = local.gw_rtt_ms;
        features[local_base + LocalMetric::GatewayJitter.index()] = local.gw_jitter_ms;
        features[local_base + LocalMetric::CpuLoad.index()] = local.cpu_load;
        features[local_base + LocalMetric::MemLoad.index()] = local.mem_load;
        features[local_base + LocalMetric::ConnCount.index()] = local.conn_count;

        // 3. Visit the service and measure QoE.
        let plt = self
            .catalog
            .get(service)
            .page_load_time_s(client, local.cpu_load, |origin| {
                self.sample_path(client, origin, &local, scenario, &mut rng)
            });

        // 4. Label: degraded iff the PLT exceeds the threshold AND an
        //    injected fault explains it.
        let nominal_plt = self.nominal_plt(client, service);
        let degraded = plt > nominal_plt * QOE_DEGRADATION_FACTOR + QOE_SLACK_S;
        let label = if degraded {
            match self.attribute_cause(client, service, &scenario.faults) {
                Some(fault) => Label::Faulty {
                    cause: fault.cause_feature(),
                    family: fault.family.coarse(),
                    region: fault.region,
                },
                None => Label::Nominal,
            }
        } else {
            Label::Nominal
        };

        Observation {
            features,
            label,
            service,
            client_region: client,
            plt_s: plt,
            faults: scenario.faults.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultFamily;
    use crate::metrics::K_LANDMARK_METRICS;
    use crate::region::ALL_REGIONS;

    fn world() -> World {
        World::new()
    }

    fn service(world: &World, name: &str) -> ServiceId {
        world.catalog.by_name(name).unwrap().id
    }

    fn feature_value(w: &World, obs: &Observation, fid: FeatureId) -> f32 {
        obs.features[w.schema.index_of(fid).unwrap()]
    }

    #[test]
    fn observation_has_55_features() {
        let w = world();
        let obs = w.observe(
            Region::Amst,
            service(&w, "single"),
            &Scenario::nominal(12.0),
            1,
        );
        assert_eq!(obs.features.len(), 55);
        assert!(obs.features.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_in_seed() {
        let w = world();
        let sc = Scenario::nominal(9.0);
        let a = w.observe(Region::Toky, service(&w, "image.cdn"), &sc, 42);
        let b = w.observe(Region::Toky, service(&w, "image.cdn"), &sc, 42);
        assert_eq!(a, b);
        let c = w.observe(Region::Toky, service(&w, "image.cdn"), &sc, 43);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn nominal_scenario_yields_nominal_labels() {
        let w = world();
        let sc = Scenario::nominal(6.0);
        let mut nominal = 0;
        let mut total = 0;
        for (i, &client) in ALL_REGIONS.iter().enumerate() {
            for sid in w.catalog.all_ids() {
                let obs = w.observe(client, sid, &sc, 100 + i as u64 * 37 + sid.0 as u64);
                total += 1;
                if obs.label == Label::Nominal {
                    nominal += 1;
                }
            }
        }
        // Noise may occasionally cross the QoE threshold, but with no
        // injected faults no sample can be labelled faulty.
        assert_eq!(nominal, total);
    }

    #[test]
    fn latency_fault_visible_in_landmark_rtt() {
        let w = world();
        let fault = Fault::new(FaultFamily::ServiceLatency, Region::Grav);
        let sc = Scenario::with_faults(vec![fault], 12.0);
        let nominal_sc = Scenario::nominal(12.0);
        let faulty = w.observe(Region::Amst, service(&w, "single"), &sc, 7);
        let clean = w.observe(Region::Amst, service(&w, "single"), &nominal_sc, 7);
        let fid = FeatureId::Landmark(Region::Grav, LandmarkMetric::Rtt);
        assert!(
            feature_value(&w, &faulty, fid) > feature_value(&w, &clean, fid) + 30.0,
            "GRAV RTT must jump by ~50 ms"
        );
        // Other landmarks' RTTs stay in the same ballpark.
        let other = FeatureId::Landmark(Region::Toky, LandmarkMetric::Rtt);
        assert!(
            (feature_value(&w, &faulty, other) - feature_value(&w, &clean, other)).abs() < 30.0
        );
    }

    #[test]
    fn latency_fault_on_host_degrades_and_is_attributed() {
        let w = world();
        let fault = Fault::new(FaultFamily::ServiceLatency, Region::Grav);
        let sc = Scenario::with_faults(vec![fault], 12.0);
        // api.chain is hosted in GRAV and latency-sensitive; a client in
        // AMST (close to GRAV) has a tight nominal PLT.
        let mut faulty_count = 0;
        for seed in 0..20 {
            let obs = w.observe(Region::Amst, service(&w, "api.chain"), &sc, seed);
            if let Label::Faulty { cause, family, .. } = obs.label {
                assert_eq!(family, CoarseFamily::LinkLatency);
                assert_eq!(
                    cause,
                    FeatureId::Landmark(Region::Grav, LandmarkMetric::Rtt)
                );
                faulty_count += 1;
            }
        }
        assert!(
            faulty_count >= 15,
            "latency on host should usually degrade: {faulty_count}/20"
        );
    }

    #[test]
    fn shaping_degrades_video_but_not_single() {
        let w = world();
        let fault = Fault::new(FaultFamily::BandwidthShaping, Region::Seat);
        let sc = Scenario::with_faults(vec![fault], 12.0);
        let mut video_faulty = 0;
        let mut single_faulty = 0;
        for seed in 0..20 {
            // video.stream is hosted in SEAT.
            if w.observe(Region::Beau, service(&w, "video.stream"), &sc, seed)
                .label
                .is_faulty()
            {
                video_faulty += 1;
            }
            // single is hosted in GRAV — completely unaffected; even if it
            // were local, 15 kB at 8 Mbit/s is nothing.
            if w.observe(Region::Beau, service(&w, "single"), &sc, 1000 + seed)
                .label
                .is_faulty()
            {
                single_faulty += 1;
            }
        }
        assert!(
            video_faulty >= 15,
            "shaping must degrade video: {video_faulty}/20"
        );
        assert_eq!(single_faulty, 0, "shaping must not degrade the single page");
    }

    #[test]
    fn gateway_fault_raises_all_rtts_and_gw_metric() {
        let w = world();
        let fault = Fault::new(FaultFamily::GatewayLatency, Region::Lond);
        let sc = Scenario::with_faults(vec![fault], 12.0);
        let nominal_sc = Scenario::nominal(12.0);
        // Multiplicative congestion noise on long paths can exceed the
        // 50 ms shift in a single draw; average over seeds.
        let mean_fv = |sc: &Scenario, fid: FeatureId| {
            (0..10)
                .map(|seed| {
                    let obs = w.observe(Region::Lond, service(&w, "script.cdn"), sc, seed);
                    feature_value(&w, &obs, fid)
                })
                .sum::<f32>()
                / 10.0
        };
        let gw = FeatureId::Local(LocalMetric::GatewayRtt);
        assert!(mean_fv(&sc, gw) > mean_fv(&nominal_sc, gw) + 30.0);
        // Every landmark RTT is shifted up by roughly the gateway penalty.
        for &lm in w.schema.landmarks() {
            let fid = FeatureId::Landmark(lm, LandmarkMetric::Rtt);
            assert!(
                mean_fv(&sc, fid) > mean_fv(&nominal_sc, fid) + 25.0,
                "landmark {lm} RTT should reflect gateway latency"
            );
        }
        // A client elsewhere is untouched.
        let other = w.observe(Region::Toky, service(&w, "script.cdn"), &sc, 5);
        assert_eq!(other.label, Label::Nominal);
        assert!(feature_value(&w, &other, gw) < 10.0);
    }

    #[test]
    fn cpu_stress_degrades_dashboard_with_local_cause() {
        let w = world();
        let fault = Fault::new(FaultFamily::CpuStress, Region::Sing);
        let sc = Scenario::with_faults(vec![fault], 12.0);
        let mut hits = 0;
        for seed in 0..20 {
            let obs = w.observe(Region::Sing, service(&w, "mixed.dashboard"), &sc, seed);
            if let Label::Faulty { cause, family, .. } = obs.label {
                assert_eq!(family, CoarseFamily::LocalLoad);
                assert_eq!(cause, FeatureId::Local(LocalMetric::CpuLoad));
                hits += 1;
            }
        }
        assert!(
            hits >= 15,
            "CPU stress should degrade the dashboard: {hits}/20"
        );
    }

    #[test]
    fn loss_fault_crushes_bandwidth_feature_but_cause_is_loss() {
        // The anomaly-disentanglement scenario: loss makes measured
        // throughput collapse, yet the ground truth points at the loss
        // feature, not bandwidth.
        let w = world();
        let fault = Fault::new(FaultFamily::PacketLoss, Region::Beau);
        let sc = Scenario::with_faults(vec![fault], 12.0);
        let faulty = w.observe(Region::Amst, service(&w, "image.far"), &sc, 11);
        let clean = w.observe(
            Region::Amst,
            service(&w, "image.far"),
            &Scenario::nominal(12.0),
            11,
        );
        let bw = FeatureId::Landmark(Region::Beau, LandmarkMetric::DownBw);
        let loss = FeatureId::Landmark(Region::Beau, LandmarkMetric::LossRetrans);
        assert!(feature_value(&w, &faulty, bw) < feature_value(&w, &clean, bw) * 0.3);
        assert!(feature_value(&w, &faulty, loss) > 0.05);
        if let Label::Faulty { cause, .. } = faulty.label {
            assert_eq!(cause, loss);
        }
    }

    #[test]
    fn multi_fault_attributes_dominant_cause() {
        let w = world();
        // Latency near GRAV (the host of api.chain) and shaping near SEAT
        // (irrelevant to api.chain): the latency fault must win.
        let sc = Scenario::with_faults(
            vec![
                Fault::new(FaultFamily::ServiceLatency, Region::Grav),
                Fault::new(FaultFamily::BandwidthShaping, Region::Seat),
            ],
            12.0,
        );
        let mut latency_attr = 0;
        let mut total_faulty = 0;
        for seed in 0..20 {
            let obs = w.observe(Region::Amst, service(&w, "api.chain"), &sc, seed);
            if let Label::Faulty { cause, .. } = obs.label {
                total_faulty += 1;
                if cause == FeatureId::Landmark(Region::Grav, LandmarkMetric::Rtt) {
                    latency_attr += 1;
                }
            }
        }
        assert!(total_faulty > 10);
        assert_eq!(
            latency_attr, total_faulty,
            "only the latency fault explains api.chain"
        );
    }

    #[test]
    fn features_have_sane_ranges() {
        let w = world();
        let sc = Scenario::with_faults(
            vec![Fault::new(FaultFamily::PacketLoss, Region::Sing)],
            20.0,
        );
        for seed in 0..10 {
            let obs = w.observe(Region::Sydn, service(&w, "image.cdn"), &sc, seed);
            for (i, &v) in obs.features.iter().enumerate() {
                assert!(v.is_finite() && v >= 0.0, "feature {i} = {v}");
            }
            // RTTs below 1 second, loads within [0, 1].
            for li in 0..10 {
                assert!(obs.features[li * K_LANDMARK_METRICS] < 1000.0);
            }
            assert!(obs.features[52] <= 1.0 && obs.features[53] <= 1.0);
        }
    }
}
