//! # diagnet-sim — a geo-distributed multi-cloud testbed simulator
//!
//! The DiagNet paper (IPDPS 2021) evaluated on a real deployment: one
//! landmark server and a fleet of automated-browser clients in each of ten
//! cloud regions across four providers, three of which also hosted mock-up
//! web services; faults were injected with `tc netem` and the clients'
//! Quality of Experience (QoE) was measured from browser timings.
//!
//! We do not have that testbed, so this crate simulates it end to end:
//!
//! * [`region`] — the ten regions, their providers and geographic
//!   coordinates (Fig. 4 of the paper);
//! * [`link`] — a wide-area path model: base RTT from great-circle
//!   distance, provider peering penalties, diurnal congestion, heavy-tailed
//!   noise, and TCP throughput coupling (Mathis et al.) that entangles
//!   latency/loss with measured bandwidth exactly the way the paper's
//!   "anomaly disentanglement" challenge describes;
//! * [`fault`] — the six injectable fault families of §IV-A(e) with the
//!   paper's magnitudes (8 Mbit/s shaping, +50 ms latency, ≤100 ms jitter,
//!   8 % loss, CPU stress);
//! * [`metrics`] — the measurement schema: k = 5 metrics per landmark plus
//!   5 client-local metrics (m = 55 features for ℓ = 10 landmarks), the
//!   7 coarse fault families, and the feature ↔ root-cause mapping;
//! * [`service`] — the mock-up online services of Table II (plus two
//!   extras so that a *general* model can be trained on 8 services and
//!   specialised on the rest, as in §IV-F), with a page-load-time QoE
//!   model;
//! * [`world`] — glues everything together: a client probing landmarks and
//!   visiting services under a fault scenario, producing one feature
//!   vector + ground-truth label per observation;
//! * [`scenario`] — fault schedules (uniform region × family coverage,
//!   occasional simultaneous faults);
//! * [`dataset`] — parallel, deterministic dataset generation with the
//!   paper's hidden-landmark protocol (EAST, GRAV, SEAT unseen during
//!   training);
//! * [`stream`] — the chunk-oriented generator underneath it:
//!   bounded-memory [`stream::SampleChunk`] iteration for million-probe
//!   runs, bit-identical to the materialised path at any chunk size;
//! * [`timeline`] — multi-day measurement campaigns (the paper's two-week
//!   collection) as time-ordered sample streams for the online analysis
//!   service.
//!
//! Everything is driven by explicit seeds; generation parallelised with
//! rayon is bit-identical to the sequential result.

pub mod dataset;
pub mod export;
pub mod fault;
pub mod link;
pub mod metrics;
pub mod region;
pub mod scenario;
pub mod service;
pub mod stream;
pub mod timeline;
pub mod world;

pub use dataset::{Dataset, DatasetConfig, Sample, SimError, SplitDataset};
pub use fault::{Fault, FaultFamily, FaultLocation};
pub use metrics::{
    CoarseFamily, FeatureId, FeatureSchema, LandmarkMetric, LocalMetric, K_LANDMARK_METRICS,
    N_LOCAL_METRICS,
};
pub use region::{CloudProvider, Region, ALL_REGIONS, HIDDEN_LANDMARKS, SERVICE_REGIONS};
pub use scenario::{Scenario, ScenarioKind};
pub use service::{Service, ServiceCatalog, ServiceId};
pub use stream::{
    DatasetStream, MaterializedSource, SampleChunk, SampleSource, DEFAULT_CHUNK_SIZE,
};
pub use timeline::{Campaign, CampaignConfig, Window};
pub use world::{Label, Observation, World};
