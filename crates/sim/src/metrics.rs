//! Measurement schema: features, coarse fault families and their mapping.
//!
//! DiagNet's key structural idea is that **the space of possible root
//! causes is exactly the space of input features** (paper §III-A): each of
//! the `k = 5` metrics measured against each landmark is a candidate remote
//! root cause ("high RTT towards the GRAV landmark"), and each of the five
//! client-local metrics is a candidate local root cause ("client CPU
//! overloaded"). With ℓ = 10 landmarks this gives the paper's `m = 55`.
//!
//! Every feature is manually assigned to one of the `c = 7` coarse fault
//! families (§III-E: "In our implementation, we manually assign each
//! feature to a coarse class"), which is what Algorithm 1 uses to boost
//! family-consistent fine-grained causes.

use crate::region::{Region, ALL_REGIONS, HIDDEN_LANDMARKS};
use serde::{Deserialize, Serialize};

/// Number of metrics measured against each landmark (k in Table I).
pub const K_LANDMARK_METRICS: usize = 5;

/// Number of client-local metrics.
pub const N_LOCAL_METRICS: usize = 5;

/// A metric measured by a client against one landmark server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LandmarkMetric {
    /// Round-trip time, milliseconds (WebSocket echo in the paper).
    Rtt,
    /// Download throughput, Mbit/s (large GET timing).
    DownBw,
    /// Upload throughput, Mbit/s (large POST timing).
    UpBw,
    /// RTT jitter, milliseconds (spread across repeated probes).
    Jitter,
    /// Retransmitted + reordered packet ratio (from `getsockopt` TCP stats).
    LossRetrans,
}

/// All landmark metrics in canonical order.
pub const LANDMARK_METRICS: [LandmarkMetric; K_LANDMARK_METRICS] = [
    LandmarkMetric::Rtt,
    LandmarkMetric::DownBw,
    LandmarkMetric::UpBw,
    LandmarkMetric::Jitter,
    LandmarkMetric::LossRetrans,
];

/// A metric measured on the client itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalMetric {
    /// RTT to the local network gateway, milliseconds.
    GatewayRtt,
    /// Jitter of the gateway RTT, milliseconds.
    GatewayJitter,
    /// CPU load, 0–1.
    CpuLoad,
    /// Memory load, 0–1.
    MemLoad,
    /// Number of concurrently open connections (browser tab pressure).
    ConnCount,
}

/// All local metrics in canonical order.
pub const LOCAL_METRICS: [LocalMetric; N_LOCAL_METRICS] = [
    LocalMetric::GatewayRtt,
    LocalMetric::GatewayJitter,
    LocalMetric::CpuLoad,
    LocalMetric::MemLoad,
    LocalMetric::ConnCount,
];

/// The `c = 7` coarse fault families predicted by DiagNet's convolutional
/// classifier (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CoarseFamily {
    /// No fault.
    Nominal,
    /// Gateway / uplink latency problem (client side of the access link).
    UplinkLatency,
    /// End-to-end latency problem on a remote link.
    LinkLatency,
    /// Jitter problem on a remote link.
    LinkJitter,
    /// Packet-loss problem on a remote link.
    LinkLoss,
    /// Download/upload bandwidth problem on a remote link.
    LinkBandwidth,
    /// Client device overload (CPU / memory).
    LocalLoad,
}

/// All coarse families in canonical (class-index) order. `Nominal` is
/// class 0.
pub const ALL_FAMILIES: [CoarseFamily; 7] = [
    CoarseFamily::Nominal,
    CoarseFamily::UplinkLatency,
    CoarseFamily::LinkLatency,
    CoarseFamily::LinkJitter,
    CoarseFamily::LinkLoss,
    CoarseFamily::LinkBandwidth,
    CoarseFamily::LocalLoad,
];

impl CoarseFamily {
    /// Class index (0..7) used as the NN training label.
    pub fn index(self) -> usize {
        ALL_FAMILIES
            .iter()
            .position(|&f| f == self)
            .expect("family in ALL_FAMILIES")
    }

    /// Family from its class index.
    ///
    /// # Panics
    /// Panics if `idx >= 7`.
    pub fn from_index(idx: usize) -> CoarseFamily {
        ALL_FAMILIES[idx]
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CoarseFamily::Nominal => "Nominal",
            CoarseFamily::UplinkLatency => "Uplink",
            CoarseFamily::LinkLatency => "Latency",
            CoarseFamily::LinkJitter => "Jitter",
            CoarseFamily::LinkLoss => "Loss",
            CoarseFamily::LinkBandwidth => "Bandwidth",
            CoarseFamily::LocalLoad => "Load",
        }
    }
}

impl LandmarkMetric {
    /// Canonical position within a landmark's feature block.
    pub fn index(self) -> usize {
        LANDMARK_METRICS
            .iter()
            .position(|&m| m == self)
            .expect("metric in LANDMARK_METRICS")
    }

    /// Coarse family this metric is manually assigned to.
    pub fn family(self) -> CoarseFamily {
        match self {
            LandmarkMetric::Rtt => CoarseFamily::LinkLatency,
            LandmarkMetric::DownBw | LandmarkMetric::UpBw => CoarseFamily::LinkBandwidth,
            LandmarkMetric::Jitter => CoarseFamily::LinkJitter,
            LandmarkMetric::LossRetrans => CoarseFamily::LinkLoss,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LandmarkMetric::Rtt => "rtt",
            LandmarkMetric::DownBw => "down_bw",
            LandmarkMetric::UpBw => "up_bw",
            LandmarkMetric::Jitter => "jitter",
            LandmarkMetric::LossRetrans => "loss",
        }
    }
}

impl LocalMetric {
    /// Canonical position within the local feature block.
    pub fn index(self) -> usize {
        LOCAL_METRICS
            .iter()
            .position(|&m| m == self)
            .expect("metric in LOCAL_METRICS")
    }

    /// Coarse family this metric is manually assigned to.
    pub fn family(self) -> CoarseFamily {
        match self {
            LocalMetric::GatewayRtt | LocalMetric::GatewayJitter => CoarseFamily::UplinkLatency,
            LocalMetric::CpuLoad | LocalMetric::MemLoad | LocalMetric::ConnCount => {
                CoarseFamily::LocalLoad
            }
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LocalMetric::GatewayRtt => "gw_rtt",
            LocalMetric::GatewayJitter => "gw_jitter",
            LocalMetric::CpuLoad => "cpu_load",
            LocalMetric::MemLoad => "mem_load",
            LocalMetric::ConnCount => "conn_count",
        }
    }
}

/// A feature — equivalently, a candidate root cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureId {
    /// A metric measured against a specific landmark (a *remote* cause:
    /// location = landmark region, family = metric family).
    Landmark(Region, LandmarkMetric),
    /// A client-local metric (a *local* cause).
    Local(LocalMetric),
}

impl FeatureId {
    /// Coarse family of this feature.
    pub fn family(self) -> CoarseFamily {
        match self {
            FeatureId::Landmark(_, m) => m.family(),
            FeatureId::Local(m) => m.family(),
        }
    }

    /// The region a remote cause points to (None for local causes).
    pub fn region(self) -> Option<Region> {
        match self {
            FeatureId::Landmark(r, _) => Some(r),
            FeatureId::Local(_) => None,
        }
    }

    /// Index of this feature's *metric kind* (0..10), shared across
    /// landmarks. Normalisation statistics are computed per kind so that a
    /// landmark unseen during training still gets sensibly scaled features.
    pub fn kind_index(self) -> usize {
        match self {
            FeatureId::Landmark(_, m) => m.index(),
            FeatureId::Local(m) => K_LANDMARK_METRICS + m.index(),
        }
    }

    /// Human-readable name, e.g. `GRAV/rtt` or `local/cpu_load`.
    pub fn name(self) -> String {
        match self {
            FeatureId::Landmark(r, m) => format!("{}/{}", r.code(), m.name()),
            FeatureId::Local(m) => format!("local/{}", m.name()),
        }
    }
}

/// Maps feature indices ↔ [`FeatureId`]s for a given ordered set of
/// landmarks. Layout: `[lm₀ metrics… | lm₁ metrics… | … | local metrics]`,
/// matching the paper's `x_i[λ]` blocks followed by local features.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSchema {
    landmarks: Vec<Region>,
}

impl FeatureSchema {
    /// Schema over an explicit, ordered landmark set.
    ///
    /// # Panics
    /// Panics if `landmarks` contains duplicates or is empty.
    pub fn new(landmarks: Vec<Region>) -> Self {
        assert!(
            !landmarks.is_empty(),
            "FeatureSchema: need at least one landmark"
        );
        let mut sorted = landmarks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            landmarks.len(),
            "FeatureSchema: duplicate landmarks"
        );
        FeatureSchema { landmarks }
    }

    /// Schema over all ten landmarks (the test-time view; m = 55).
    pub fn full() -> Self {
        FeatureSchema::new(ALL_REGIONS.to_vec())
    }

    /// Schema over the seven *known* landmarks (the training-time view;
    /// EAST, GRAV and SEAT are hidden per §IV-A(d)).
    pub fn known() -> Self {
        FeatureSchema::new(
            ALL_REGIONS
                .iter()
                .copied()
                .filter(|r| !HIDDEN_LANDMARKS.contains(r))
                .collect(),
        )
    }

    /// The ordered landmark set.
    pub fn landmarks(&self) -> &[Region] {
        &self.landmarks
    }

    /// Number of landmarks (ℓ).
    pub fn n_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Total feature count (`ℓ·k + 5`).
    pub fn n_features(&self) -> usize {
        self.landmarks.len() * K_LANDMARK_METRICS + N_LOCAL_METRICS
    }

    /// The [`FeatureId`] at a feature index.
    ///
    /// # Panics
    /// Panics if `idx >= n_features()`.
    pub fn feature(&self, idx: usize) -> FeatureId {
        let land = self.landmarks.len() * K_LANDMARK_METRICS;
        if idx < land {
            FeatureId::Landmark(
                self.landmarks[idx / K_LANDMARK_METRICS],
                LANDMARK_METRICS[idx % K_LANDMARK_METRICS],
            )
        } else {
            let li = idx - land;
            assert!(li < N_LOCAL_METRICS, "feature index {idx} out of range");
            FeatureId::Local(LOCAL_METRICS[li])
        }
    }

    /// Index of a [`FeatureId`] in this schema, if its landmark is present.
    pub fn index_of(&self, fid: FeatureId) -> Option<usize> {
        match fid {
            FeatureId::Landmark(r, m) => self
                .landmarks
                .iter()
                .position(|&lr| lr == r)
                .map(|li| li * K_LANDMARK_METRICS + m.index()),
            FeatureId::Local(m) => Some(self.landmarks.len() * K_LANDMARK_METRICS + m.index()),
        }
    }

    /// All features in index order.
    pub fn features(&self) -> Vec<FeatureId> {
        (0..self.n_features()).map(|i| self.feature(i)).collect()
    }

    /// Coarse family of the feature at `idx`.
    pub fn family_of(&self, idx: usize) -> CoarseFamily {
        self.feature(idx).family()
    }

    /// Indices of all features assigned to `family`.
    pub fn indices_of_family(&self, family: CoarseFamily) -> Vec<usize> {
        (0..self.n_features())
            .filter(|&i| self.family_of(i) == family)
            .collect()
    }

    /// Project a feature vector expressed in `from`'s layout into this
    /// schema's layout; features whose landmark is missing in `from` are
    /// filled with `fill`.
    pub fn project_from(&self, from: &FeatureSchema, values: &[f32], fill: f32) -> Vec<f32> {
        assert_eq!(
            values.len(),
            from.n_features(),
            "project_from: value length mismatch"
        );
        (0..self.n_features())
            .map(|i| from.index_of(self.feature(i)).map_or(fill, |j| values[j]))
            .collect()
    }

    /// Indices (in `self`) of features whose landmark is **not** present in
    /// `other` — i.e. the "unknown feature" set U of §III-F when `self` is
    /// the test schema and `other` the training schema.
    pub fn unknown_relative_to(&self, other: &FeatureSchema) -> Vec<usize> {
        (0..self.n_features())
            .filter(|&i| other.index_of(self.feature(i)).is_none())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_schema_is_55_features() {
        assert_eq!(FeatureSchema::full().n_features(), 55);
    }

    #[test]
    fn known_schema_is_40_features() {
        let s = FeatureSchema::known();
        assert_eq!(s.n_landmarks(), 7);
        assert_eq!(s.n_features(), 40);
        assert!(s.landmarks().iter().all(|r| !r.is_hidden_landmark()));
    }

    #[test]
    fn feature_index_round_trip() {
        let s = FeatureSchema::full();
        for i in 0..s.n_features() {
            assert_eq!(s.index_of(s.feature(i)), Some(i));
        }
    }

    #[test]
    fn local_features_at_end() {
        let s = FeatureSchema::full();
        assert_eq!(s.feature(50), FeatureId::Local(LocalMetric::GatewayRtt));
        assert_eq!(s.feature(54), FeatureId::Local(LocalMetric::ConnCount));
    }

    #[test]
    fn seven_families_with_expected_indices() {
        assert_eq!(ALL_FAMILIES.len(), 7);
        assert_eq!(CoarseFamily::Nominal.index(), 0);
        for f in ALL_FAMILIES {
            assert_eq!(CoarseFamily::from_index(f.index()), f);
        }
    }

    #[test]
    fn family_assignment_covers_all_features() {
        let s = FeatureSchema::full();
        // Every non-nominal family has at least one feature; nominal has none.
        assert!(s.indices_of_family(CoarseFamily::Nominal).is_empty());
        for f in &ALL_FAMILIES[1..] {
            assert!(
                !s.indices_of_family(*f).is_empty(),
                "family {f:?} has no features"
            );
        }
        // Families partition the features.
        let total: usize = ALL_FAMILIES
            .iter()
            .map(|&f| s.indices_of_family(f).len())
            .sum();
        assert_eq!(total, 55);
    }

    #[test]
    fn bandwidth_family_covers_both_directions() {
        assert_eq!(LandmarkMetric::DownBw.family(), CoarseFamily::LinkBandwidth);
        assert_eq!(LandmarkMetric::UpBw.family(), CoarseFamily::LinkBandwidth);
    }

    #[test]
    fn projection_between_schemas() {
        let full = FeatureSchema::full();
        let known = FeatureSchema::known();
        let full_values: Vec<f32> = (0..55).map(|i| i as f32).collect();
        // Full → known keeps only known-landmark features.
        let down = known.project_from(&full, &full_values, -1.0);
        assert_eq!(down.len(), 40);
        assert!(
            !down.contains(&-1.0),
            "no fill expected when projecting down"
        );
        // Known → full fills hidden-landmark features.
        let up = full.project_from(&known, &down, 0.0);
        assert_eq!(up.len(), 55);
        let unknown = full.unknown_relative_to(&known);
        assert_eq!(unknown.len(), 15); // 3 hidden landmarks × 5 metrics
        for &i in &unknown {
            assert_eq!(up[i], 0.0);
        }
        // Round-trips for known features.
        for i in 0..55 {
            if !unknown.contains(&i) {
                assert_eq!(up[i], full_values[i]);
            }
        }
    }

    #[test]
    fn unknown_set_is_exactly_hidden_landmarks() {
        let full = FeatureSchema::full();
        let known = FeatureSchema::known();
        for &i in &full.unknown_relative_to(&known) {
            match full.feature(i) {
                FeatureId::Landmark(r, _) => assert!(r.is_hidden_landmark()),
                FeatureId::Local(_) => panic!("local features are never unknown"),
            }
        }
    }

    #[test]
    fn kind_index_shared_across_landmarks() {
        let a = FeatureId::Landmark(Region::Seat, LandmarkMetric::Rtt);
        let b = FeatureId::Landmark(Region::Toky, LandmarkMetric::Rtt);
        assert_eq!(a.kind_index(), b.kind_index());
        assert_ne!(
            a.kind_index(),
            FeatureId::Local(LocalMetric::CpuLoad).kind_index()
        );
    }

    #[test]
    #[should_panic(expected = "duplicate landmarks")]
    fn duplicate_landmarks_panic() {
        FeatureSchema::new(vec![Region::Seat, Region::Seat]);
    }

    #[test]
    fn names_are_informative() {
        let s = FeatureSchema::full();
        assert_eq!(s.feature(0).name(), "SEAT/rtt");
        assert_eq!(s.feature(54).name(), "local/conn_count");
    }
}
