//! Mock-up online services and their QoE (page-load-time) model.
//!
//! Table II of the paper defines six services with distinct network
//! sensitivity profiles (a bare HTML page, scripts and images fetched from
//! a far region or the nearest CDN region, …). We add four more with
//! complementary profiles (API chains, bulk video, a mixed dashboard and an
//! upload portal) so that — as in §IV-F — a *general* model can be trained
//! on eight services and *specialised* models on services never seen by the
//! general training run.
//!
//! QoE is modelled as an analytic page load time (PLT): each resource costs
//! protocol handshakes (RTT- and jitter-bound) plus payload transfer
//! (bandwidth- and loss-bound via the Mathis cap), and rendering cost
//! scales with client CPU load. A sample's QoE is *degraded* when its PLT
//! exceeds a multiplicative threshold over the deterministic fault-free
//! baseline — which reproduces the paper's observation that many injected
//! faults do **not** degrade QoE (e.g. bandwidth shaping does not hurt a
//! small HTML page) and such samples must be labelled nominal.

use crate::link::PathConditions;
use crate::region::{Region, SERVICE_REGIONS};
use serde::{Deserialize, Serialize};

/// Identifier of a service in a [`ServiceCatalog`] (index into the list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServiceId(pub usize);

/// Where a resource is served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Origin {
    /// The service's own host region.
    Host,
    /// A fixed region (e.g. a third-party script pinned in BEAU).
    Fixed(Region),
    /// The CDN point of presence nearest to the client
    /// (resolved among [`SERVICE_REGIONS`]).
    Nearest,
}

/// Transfer direction of a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Client downloads the resource.
    Down,
    /// Client uploads the resource (POST body).
    Up,
}

/// One dependency fetched when loading the service.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Resource {
    /// Human-readable name ("html", "hero-image", …).
    pub name: &'static str,
    /// Payload size in kilobytes.
    pub size_kb: f32,
    /// Origin server.
    pub origin: Origin,
    /// Protocol round trips before the payload flows (DNS/TCP/TLS/request).
    /// Resources reusing an existing connection cost fewer.
    pub setup_rtts: f32,
    /// Transfer direction.
    pub direction: Direction,
}

/// A mock-up online service.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Service {
    /// Identifier (index in the catalog).
    pub id: ServiceId,
    /// Name following the paper's `kind.variant` convention.
    pub name: &'static str,
    /// Region hosting the main document.
    pub host: Region,
    /// Dependencies fetched sequentially after the main document.
    pub resources: Vec<Resource>,
    /// Client-side rendering cost at zero CPU load, milliseconds.
    pub render_ms: f32,
}

/// QoE degradation threshold: a page load is *degraded* when it exceeds
/// `PLT_nominal × QOE_DEGRADATION_FACTOR + QOE_SLACK_S`.
pub const QOE_DEGRADATION_FACTOR: f32 = 1.4;

/// Absolute slack added to the degradation threshold (seconds), so tiny
/// pages do not flip on millisecond noise.
pub const QOE_SLACK_S: f32 = 0.1;

impl Service {
    /// Resolve a resource origin to a concrete region for a given client.
    pub fn resolve_origin(&self, client: Region, origin: Origin) -> Region {
        match origin {
            Origin::Host => self.host,
            Origin::Fixed(r) => r,
            Origin::Nearest => client.nearest_of(&SERVICE_REGIONS),
        }
    }

    /// Page load time (seconds) for a client in `client`, with CPU load
    /// `cpu_load ∈ [0,1]`, where `path(origin_region)` yields the current
    /// conditions of the client→origin path (gateway effects included by
    /// the caller).
    pub fn page_load_time_s<F>(&self, client: Region, cpu_load: f32, mut path: F) -> f32
    where
        F: FnMut(Region) -> PathConditions,
    {
        let mut plt = 0.0f32;
        for res in &self.resources {
            let origin = self.resolve_origin(client, res.origin);
            let cond = path(origin);
            plt += match res.direction {
                Direction::Down => cond.download_time_s(res.size_kb, res.setup_rtts),
                Direction::Up => cond.upload_time_s(res.size_kb, res.setup_rtts),
            };
        }
        // Rendering slows superlinearly as the CPU saturates; a stressed
        // client (load ≈ 0.95) renders ≈ 3.7× slower.
        let render_factor = 1.0 + 3.0 * cpu_load * cpu_load;
        plt + self.render_ms / 1000.0 * render_factor
    }

    /// All regions this service may fetch from for a given client —
    /// the service's (hidden) dependency set.
    pub fn dependency_regions(&self, client: Region) -> Vec<Region> {
        let mut regions: Vec<Region> = self
            .resources
            .iter()
            .map(|r| self.resolve_origin(client, r.origin))
            .collect();
        regions.sort();
        regions.dedup();
        regions
    }
}

/// The full set of mock-up services.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceCatalog {
    /// Services, indexed by [`ServiceId`].
    pub services: Vec<Service>,
}

impl ServiceCatalog {
    /// The standard ten-service catalog: Table II's six services plus four
    /// with complementary sensitivity profiles.
    pub fn standard() -> Self {
        let mut services = Vec::new();
        let mut push =
            |name: &'static str, host: Region, render_ms: f32, resources: Vec<Resource>| {
                services.push(Service {
                    id: ServiceId(services.len()),
                    name,
                    host,
                    resources,
                    render_ms,
                });
            };
        let html = |setup: f32| Resource {
            name: "html",
            size_kb: 15.0,
            origin: Origin::Host,
            setup_rtts: setup,
            direction: Direction::Down,
        };
        // 1. single — static HTML page, no dependency (Table II).
        push("single", Region::Grav, 30.0, vec![html(3.0)]);
        // 2. script.far — requires a JS file in BEAU (Table II).
        push(
            "script.far",
            Region::Seat,
            120.0,
            vec![
                html(3.0),
                Resource {
                    name: "app.js",
                    size_kb: 300.0,
                    origin: Origin::Fixed(Region::Beau),
                    setup_rtts: 3.0,
                    direction: Direction::Down,
                },
            ],
        );
        // 3. script.cdn — JS from the nearest region (Table II).
        push(
            "script.cdn",
            Region::Sing,
            120.0,
            vec![
                html(3.0),
                Resource {
                    name: "app.js",
                    size_kb: 300.0,
                    origin: Origin::Nearest,
                    setup_rtts: 3.0,
                    direction: Direction::Down,
                },
            ],
        );
        // 4. image.local — 5 MB image from the same server, same HTTP
        //    connection (Table II): no extra handshakes.
        push(
            "image.local",
            Region::Grav,
            80.0,
            vec![
                html(3.0),
                Resource {
                    name: "hero.png",
                    size_kb: 5000.0,
                    origin: Origin::Host,
                    setup_rtts: 1.0,
                    direction: Direction::Down,
                },
            ],
        );
        // 5. image.far — 5 MB image from BEAU (Table II).
        push(
            "image.far",
            Region::Seat,
            80.0,
            vec![
                html(3.0),
                Resource {
                    name: "hero.png",
                    size_kb: 5000.0,
                    origin: Origin::Fixed(Region::Beau),
                    setup_rtts: 3.0,
                    direction: Direction::Down,
                },
            ],
        );
        // 6. image.cdn — 5 MB image from the nearest region (Table II).
        push(
            "image.cdn",
            Region::Sing,
            80.0,
            vec![
                html(3.0),
                Resource {
                    name: "hero.png",
                    size_kb: 5000.0,
                    origin: Origin::Nearest,
                    setup_rtts: 3.0,
                    direction: Direction::Down,
                },
            ],
        );
        // 7. api.chain — three sequential API calls to the host
        //    (latency-sensitive, like a multiplayer lobby at GRAV).
        let api = |name: &'static str| Resource {
            name,
            size_kb: 5.0,
            origin: Origin::Host,
            setup_rtts: 2.0,
            direction: Direction::Down,
        };
        push(
            "api.chain",
            Region::Grav,
            90.0,
            vec![html(3.0), api("api-1"), api("api-2"), api("api-3")],
        );
        // 8. video.stream — 20 MB of segments from the host
        //    (bandwidth-sensitive, like video start-up buffering).
        push(
            "video.stream",
            Region::Seat,
            60.0,
            vec![
                html(3.0),
                Resource {
                    name: "segments",
                    size_kb: 20_000.0,
                    origin: Origin::Host,
                    setup_rtts: 2.0,
                    direction: Direction::Down,
                },
            ],
        );
        // 9. mixed.dashboard — scripts from BEAU, images from the CDN, an
        //    API call to GRAV, heavy rendering (CPU-sensitive).
        push(
            "mixed.dashboard",
            Region::Sing,
            400.0,
            vec![
                html(3.0),
                Resource {
                    name: "charts.js",
                    size_kb: 500.0,
                    origin: Origin::Fixed(Region::Beau),
                    setup_rtts: 3.0,
                    direction: Direction::Down,
                },
                Resource {
                    name: "tiles.png",
                    size_kb: 1000.0,
                    origin: Origin::Nearest,
                    setup_rtts: 2.0,
                    direction: Direction::Down,
                },
                Resource {
                    name: "api",
                    size_kb: 20.0,
                    origin: Origin::Fixed(Region::Grav),
                    setup_rtts: 2.0,
                    direction: Direction::Down,
                },
            ],
        );
        // 10. upload.portal — 2 MB POST to the host (upload-sensitive).
        push(
            "upload.portal",
            Region::Grav,
            70.0,
            vec![
                html(3.0),
                Resource {
                    name: "attachment",
                    size_kb: 2000.0,
                    origin: Origin::Host,
                    setup_rtts: 2.0,
                    direction: Direction::Up,
                },
            ],
        );
        ServiceCatalog { services }
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Service by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn get(&self, id: ServiceId) -> &Service {
        &self.services[id.0]
    }

    /// Service by name, if present.
    pub fn by_name(&self, name: &str) -> Option<&Service> {
        self.services.iter().find(|s| s.name == name)
    }

    /// The eight services the paper's *general* model is trained on.
    pub fn general_ids(&self) -> Vec<ServiceId> {
        self.services.iter().take(8).map(|s| s.id).collect()
    }

    /// Services reserved for specialised-model evaluation (never seen by
    /// general training).
    pub fn held_out_ids(&self) -> Vec<ServiceId> {
        self.services.iter().skip(8).map(|s| s.id).collect()
    }

    /// All service ids.
    pub fn all_ids(&self) -> Vec<ServiceId> {
        self.services.iter().map(|s| s.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;

    fn plt(service: &Service, client: Region, cpu: f32) -> f32 {
        let model = LinkModel::default();
        service.page_load_time_s(client, cpu, |origin| {
            model.expected_conditions(client, origin)
        })
    }

    #[test]
    fn catalog_has_ten_services_with_table_ii_names() {
        let cat = ServiceCatalog::standard();
        assert_eq!(cat.len(), 10);
        for name in [
            "single",
            "script.far",
            "script.cdn",
            "image.local",
            "image.far",
            "image.cdn",
        ] {
            assert!(
                cat.by_name(name).is_some(),
                "missing Table II service {name}"
            );
        }
        assert_eq!(cat.general_ids().len(), 8);
        assert_eq!(cat.held_out_ids().len(), 2);
    }

    #[test]
    fn ids_match_indices() {
        let cat = ServiceCatalog::standard();
        for (i, s) in cat.services.iter().enumerate() {
            assert_eq!(s.id, ServiceId(i));
            assert_eq!(cat.get(s.id).name, s.name);
        }
    }

    #[test]
    fn hosts_are_service_regions() {
        let cat = ServiceCatalog::standard();
        for s in &cat.services {
            assert!(
                SERVICE_REGIONS.contains(&s.host),
                "{} hosted in {}",
                s.name,
                s.host
            );
        }
    }

    #[test]
    fn nearest_origin_resolves_per_client() {
        let cat = ServiceCatalog::standard();
        let cdn = cat.by_name("image.cdn").unwrap();
        assert_eq!(
            cdn.resolve_origin(Region::Lond, Origin::Nearest),
            Region::Grav
        );
        assert_eq!(
            cdn.resolve_origin(Region::Toky, Origin::Nearest),
            Region::Sing
        );
    }

    #[test]
    fn far_image_slower_than_cdn_image_for_european_client() {
        let cat = ServiceCatalog::standard();
        let far = plt(cat.by_name("image.far").unwrap(), Region::Amst, 0.05);
        let cdn = plt(cat.by_name("image.cdn").unwrap(), Region::Amst, 0.05);
        assert!(far > cdn, "far {far} vs cdn {cdn}");
    }

    #[test]
    fn cpu_stress_crosses_threshold_for_dashboard_not_single() {
        // Paper: "the QoE of a small HTML website was not affected by ...
        // CPU stress", while render-heavy pages degrade.
        let cat = ServiceCatalog::standard();
        let dash = cat.by_name("mixed.dashboard").unwrap();
        let single = cat.by_name("single").unwrap();
        let crosses = |svc: &Service, client: Region| {
            let nominal = plt(svc, client, 0.15);
            let stressed = plt(svc, client, 0.95);
            stressed > nominal * QOE_DEGRADATION_FACTOR + QOE_SLACK_S
        };
        assert!(
            crosses(dash, Region::Sing),
            "dashboard must degrade under CPU stress"
        );
        assert!(
            !crosses(single, Region::Amst),
            "single page must shrug off CPU stress"
        );
    }

    #[test]
    fn video_dominated_by_bandwidth() {
        let cat = ServiceCatalog::standard();
        let video = cat.by_name("video.stream").unwrap();
        let model = LinkModel::default();
        let fast = video.page_load_time_s(Region::Beau, 0.0, |o| {
            model.expected_conditions(Region::Beau, o)
        });
        let shaped = video.page_load_time_s(Region::Beau, 0.0, |o| {
            let mut c = model.expected_conditions(Region::Beau, o);
            c.down_capacity_mbps = 8.0;
            c
        });
        assert!(
            shaped > fast * 3.0,
            "shaping must crush video PLT: {fast} → {shaped}"
        );
    }

    #[test]
    fn single_page_insensitive_to_bandwidth() {
        let cat = ServiceCatalog::standard();
        let single = cat.by_name("single").unwrap();
        let model = LinkModel::default();
        let fast = single.page_load_time_s(Region::Amst, 0.0, |o| {
            model.expected_conditions(Region::Amst, o)
        });
        let shaped = single.page_load_time_s(Region::Amst, 0.0, |o| {
            let mut c = model.expected_conditions(Region::Amst, o);
            c.down_capacity_mbps = 8.0;
            c
        });
        assert!(
            shaped < fast * QOE_DEGRADATION_FACTOR + QOE_SLACK_S,
            "shaping must NOT degrade a 15 kB page: {fast} → {shaped}"
        );
    }

    #[test]
    fn api_chain_sensitive_to_latency() {
        let cat = ServiceCatalog::standard();
        let api = cat.by_name("api.chain").unwrap();
        let model = LinkModel::default();
        let base = api.page_load_time_s(Region::Amst, 0.0, |o| {
            model.expected_conditions(Region::Amst, o)
        });
        let slow = api.page_load_time_s(Region::Amst, 0.0, |o| {
            let mut c = model.expected_conditions(Region::Amst, o);
            c.rtt_ms += 50.0;
            c
        });
        assert!(
            slow > base * QOE_DEGRADATION_FACTOR + QOE_SLACK_S,
            "latency must degrade the API chain: {base} → {slow}"
        );
    }

    #[test]
    fn upload_portal_uses_upstream() {
        let cat = ServiceCatalog::standard();
        let portal = cat.by_name("upload.portal").unwrap();
        let model = LinkModel::default();
        let base = portal.page_load_time_s(Region::Amst, 0.0, |o| {
            model.expected_conditions(Region::Amst, o)
        });
        // Crushing *upstream* capacity must hurt; downstream barely matters.
        let up_crushed = portal.page_load_time_s(Region::Amst, 0.0, |o| {
            let mut c = model.expected_conditions(Region::Amst, o);
            c.up_capacity_mbps = 1.0;
            c
        });
        assert!(up_crushed > base * 2.0);
    }

    #[test]
    fn dependency_regions_reflect_hidden_architecture() {
        let cat = ServiceCatalog::standard();
        let dash = cat.by_name("mixed.dashboard").unwrap();
        let deps = dash.dependency_regions(Region::Lond);
        assert!(deps.contains(&Region::Beau)); // scripts
        assert!(deps.contains(&Region::Grav)); // api + nearest CDN for London
        assert!(deps.contains(&Region::Sing)); // host
    }
}
