//! Fault injection — the six fault families of paper §IV-A(e).
//!
//! Faults are injected *per region* (the paper applied `tc netem` rules
//! inside cloud regions). Network-level faults affect every path touching
//! the faulty region; client-level faults (gateway latency, CPU stress)
//! affect clients located in the faulty region.
//!
//! Magnitudes follow the paper: download shaping at 8 Mbit/s, +50 ms
//! service latency, +50 ms gateway latency, jitter up to 100 ms, 8 %
//! packet loss, and a CPU stress that measurably degrades page rendering.

use crate::link::PathConditions;
use crate::metrics::{CoarseFamily, FeatureId, LandmarkMetric, LocalMetric};
use crate::region::Region;
use diagnet_rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// One of the six injectable fault families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultFamily {
    /// Download bandwidth shaped to 8 Mbit/s on paths touching the region.
    BandwidthShaping,
    /// +50 ms latency on paths touching the region.
    ServiceLatency,
    /// +50 ms latency at the gateway of clients *in* the region.
    GatewayLatency,
    /// Up to +100 ms of jitter on paths touching the region.
    Jitter,
    /// +8 % packet loss on paths touching the region.
    PacketLoss,
    /// CPU stress on clients *in* the region (impacts page rendering).
    CpuStress,
}

/// All injectable families (uniform scheduling iterates this).
pub const ALL_FAULT_FAMILIES: [FaultFamily; 6] = [
    FaultFamily::BandwidthShaping,
    FaultFamily::ServiceLatency,
    FaultFamily::GatewayLatency,
    FaultFamily::Jitter,
    FaultFamily::PacketLoss,
    FaultFamily::CpuStress,
];

/// Where a fault family acts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultLocation {
    /// Acts on network paths with an endpoint in the region.
    NetworkPaths,
    /// Acts on client devices located in the region.
    ClientDevices,
}

impl FaultFamily {
    /// Index within [`ALL_FAULT_FAMILIES`].
    pub fn index(self) -> usize {
        ALL_FAULT_FAMILIES
            .iter()
            .position(|&f| f == self)
            .expect("family listed")
    }

    /// The coarse class (paper §III-B) this fault family maps to.
    pub fn coarse(self) -> CoarseFamily {
        match self {
            FaultFamily::BandwidthShaping => CoarseFamily::LinkBandwidth,
            FaultFamily::ServiceLatency => CoarseFamily::LinkLatency,
            FaultFamily::GatewayLatency => CoarseFamily::UplinkLatency,
            FaultFamily::Jitter => CoarseFamily::LinkJitter,
            FaultFamily::PacketLoss => CoarseFamily::LinkLoss,
            FaultFamily::CpuStress => CoarseFamily::LocalLoad,
        }
    }

    /// Whether this family acts on paths or on client devices.
    pub fn location(self) -> FaultLocation {
        match self {
            FaultFamily::GatewayLatency | FaultFamily::CpuStress => FaultLocation::ClientDevices,
            _ => FaultLocation::NetworkPaths,
        }
    }

    /// Display name matching the paper's fault list.
    pub fn name(self) -> &'static str {
        match self {
            FaultFamily::BandwidthShaping => "bandwidth-shaping",
            FaultFamily::ServiceLatency => "service-latency",
            FaultFamily::GatewayLatency => "gateway-latency",
            FaultFamily::Jitter => "jitter",
            FaultFamily::PacketLoss => "packet-loss",
            FaultFamily::CpuStress => "cpu-stress",
        }
    }
}

/// A fault instance: a family injected in a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// Injected family.
    pub family: FaultFamily,
    /// Region whose paths/clients are affected.
    pub region: Region,
}

/// Paper-calibrated injection magnitudes.
mod magnitude {
    /// Download cap under shaping, Mbit/s.
    pub const SHAPED_DOWN_MBPS: f32 = 8.0;
    /// Added path latency, ms.
    pub const SERVICE_LATENCY_MS: f32 = 50.0;
    /// Added gateway latency, ms.
    pub const GATEWAY_LATENCY_MS: f32 = 50.0;
    /// Maximum added jitter, ms (uniform in [MAX/2, MAX]).
    pub const JITTER_MAX_MS: f32 = 100.0;
    /// Added packet loss ratio.
    pub const LOSS_RATIO: f32 = 0.08;
    /// CPU load under stress (fraction of one core).
    pub const CPU_STRESS_LOAD: f32 = 0.95;
}

impl Fault {
    /// Convenience constructor.
    pub fn new(family: FaultFamily, region: Region) -> Self {
        Fault { family, region }
    }

    /// Whether this fault perturbs the path `from → to`.
    pub fn affects_path(&self, from: Region, to: Region) -> bool {
        self.family.location() == FaultLocation::NetworkPaths
            && (from == self.region || to == self.region)
    }

    /// Whether this fault perturbs a client located in `client_region`.
    pub fn affects_client(&self, client_region: Region) -> bool {
        self.family.location() == FaultLocation::ClientDevices && client_region == self.region
    }

    /// The ground-truth root-cause feature for a client observing this
    /// fault (paper §III-A: the root-cause space *is* the feature space).
    pub fn cause_feature(&self) -> FeatureId {
        match self.family {
            FaultFamily::BandwidthShaping => {
                FeatureId::Landmark(self.region, LandmarkMetric::DownBw)
            }
            FaultFamily::ServiceLatency => FeatureId::Landmark(self.region, LandmarkMetric::Rtt),
            FaultFamily::Jitter => FeatureId::Landmark(self.region, LandmarkMetric::Jitter),
            FaultFamily::PacketLoss => {
                FeatureId::Landmark(self.region, LandmarkMetric::LossRetrans)
            }
            FaultFamily::GatewayLatency => FeatureId::Local(LocalMetric::GatewayRtt),
            FaultFamily::CpuStress => FeatureId::Local(LocalMetric::CpuLoad),
        }
    }

    /// Apply this fault's effect to path conditions (no-op when the path is
    /// unaffected). `rng` drives the stochastic part of jitter injection.
    pub fn apply_to_path(
        &self,
        cond: &mut PathConditions,
        from: Region,
        to: Region,
        rng: &mut SplitMix64,
    ) {
        if !self.affects_path(from, to) {
            return;
        }
        match self.family {
            FaultFamily::BandwidthShaping => {
                cond.down_capacity_mbps = cond.down_capacity_mbps.min(magnitude::SHAPED_DOWN_MBPS);
            }
            FaultFamily::ServiceLatency => {
                cond.rtt_ms += magnitude::SERVICE_LATENCY_MS;
            }
            FaultFamily::Jitter => {
                // tc netem "up to 100 ms": sample the realised spread.
                let added = rng.uniform(magnitude::JITTER_MAX_MS * 0.5, magnitude::JITTER_MAX_MS);
                cond.jitter_ms += added;
                // Jitter also inflates the mean RTT a little (queue churn).
                cond.rtt_ms += added * 0.25;
            }
            FaultFamily::PacketLoss => {
                cond.loss = (cond.loss + magnitude::LOSS_RATIO).min(1.0);
            }
            FaultFamily::GatewayLatency | FaultFamily::CpuStress => unreachable!("client fault"),
        }
    }

    /// Deterministic variant of [`Fault::apply_to_path`] that uses the
    /// *expected* magnitude for stochastic faults (jitter). Used for QoE
    /// baselines and root-cause attribution, where two evaluations must be
    /// comparable.
    pub fn apply_to_path_expected(&self, cond: &mut PathConditions, from: Region, to: Region) {
        if !self.affects_path(from, to) {
            return;
        }
        match self.family {
            FaultFamily::Jitter => {
                let added = magnitude::JITTER_MAX_MS * 0.75; // mean of U[50, 100]
                cond.jitter_ms += added;
                cond.rtt_ms += added * 0.25;
            }
            // All other path faults are already deterministic.
            _ => {
                let mut rng = SplitMix64::new(0);
                self.apply_to_path(cond, from, to, &mut rng);
            }
        }
    }

    /// Extra RTT this fault adds at the *client gateway* (0 when it is not
    /// a gateway fault or the client is elsewhere).
    pub fn gateway_latency_ms(&self, client_region: Region) -> f32 {
        if self.family == FaultFamily::GatewayLatency && self.affects_client(client_region) {
            magnitude::GATEWAY_LATENCY_MS
        } else {
            0.0
        }
    }

    /// CPU load this fault imposes on a client (0 when not applicable).
    pub fn cpu_stress_load(&self, client_region: Region) -> f32 {
        if self.family == FaultFamily::CpuStress && self.affects_client(client_region) {
            magnitude::CPU_STRESS_LOAD
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.family.name(), self.region.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;

    fn nominal() -> PathConditions {
        LinkModel::default().expected_conditions(Region::Beau, Region::Grav)
    }

    #[test]
    fn six_families_cover_six_coarse_classes() {
        let mut coarse: Vec<CoarseFamily> = ALL_FAULT_FAMILIES.iter().map(|f| f.coarse()).collect();
        coarse.sort();
        coarse.dedup();
        assert_eq!(
            coarse.len(),
            6,
            "each fault family maps to a distinct coarse class"
        );
        assert!(!coarse.contains(&CoarseFamily::Nominal));
    }

    #[test]
    fn path_faults_affect_both_endpoints() {
        let f = Fault::new(FaultFamily::PacketLoss, Region::Grav);
        assert!(f.affects_path(Region::Grav, Region::Toky));
        assert!(f.affects_path(Region::Toky, Region::Grav));
        assert!(!f.affects_path(Region::Toky, Region::Seat));
    }

    #[test]
    fn client_faults_only_affect_local_clients() {
        let f = Fault::new(FaultFamily::CpuStress, Region::Sing);
        assert!(f.affects_client(Region::Sing));
        assert!(!f.affects_client(Region::Seat));
        assert!(
            !f.affects_path(Region::Sing, Region::Seat),
            "CPU stress is not a path fault"
        );
    }

    #[test]
    fn shaping_caps_download_only() {
        let mut cond = nominal();
        let up_before = cond.up_capacity_mbps;
        let f = Fault::new(FaultFamily::BandwidthShaping, Region::Grav);
        f.apply_to_path(
            &mut cond,
            Region::Beau,
            Region::Grav,
            &mut SplitMix64::new(1),
        );
        assert_eq!(cond.down_capacity_mbps, 8.0);
        assert_eq!(cond.up_capacity_mbps, up_before);
    }

    #[test]
    fn latency_fault_adds_50ms() {
        let mut cond = nominal();
        let before = cond.rtt_ms;
        Fault::new(FaultFamily::ServiceLatency, Region::Beau).apply_to_path(
            &mut cond,
            Region::Beau,
            Region::Grav,
            &mut SplitMix64::new(1),
        );
        assert!((cond.rtt_ms - before - 50.0).abs() < 1e-5);
    }

    #[test]
    fn jitter_fault_bounded_and_random() {
        let f = Fault::new(FaultFamily::Jitter, Region::Beau);
        for seed in 0..20 {
            let mut cond = nominal();
            let before = cond.jitter_ms;
            f.apply_to_path(
                &mut cond,
                Region::Beau,
                Region::Grav,
                &mut SplitMix64::new(seed),
            );
            let added = cond.jitter_ms - before;
            assert!((50.0..=100.0).contains(&added), "added jitter {added}");
        }
    }

    #[test]
    fn loss_fault_adds_8_percent() {
        let mut cond = nominal();
        let before = cond.loss;
        Fault::new(FaultFamily::PacketLoss, Region::Grav).apply_to_path(
            &mut cond,
            Region::Grav,
            Region::Toky,
            &mut SplitMix64::new(1),
        );
        assert!((cond.loss - before - 0.08).abs() < 1e-6);
    }

    #[test]
    fn unaffected_path_is_untouched() {
        let mut cond = nominal();
        let before = cond;
        Fault::new(FaultFamily::PacketLoss, Region::Sing).apply_to_path(
            &mut cond,
            Region::Beau,
            Region::Grav,
            &mut SplitMix64::new(1),
        );
        assert_eq!(cond, before);
    }

    #[test]
    fn cause_features_match_families() {
        let f = Fault::new(FaultFamily::BandwidthShaping, Region::Amst);
        assert_eq!(
            f.cause_feature(),
            FeatureId::Landmark(Region::Amst, LandmarkMetric::DownBw)
        );
        assert_eq!(f.cause_feature().family(), CoarseFamily::LinkBandwidth);
        let g = Fault::new(FaultFamily::GatewayLatency, Region::Amst);
        assert_eq!(g.cause_feature(), FeatureId::Local(LocalMetric::GatewayRtt));
    }

    #[test]
    fn gateway_and_cpu_magnitudes() {
        let g = Fault::new(FaultFamily::GatewayLatency, Region::Seat);
        assert_eq!(g.gateway_latency_ms(Region::Seat), 50.0);
        assert_eq!(g.gateway_latency_ms(Region::Beau), 0.0);
        let c = Fault::new(FaultFamily::CpuStress, Region::Seat);
        assert!(c.cpu_stress_load(Region::Seat) > 0.9);
        assert_eq!(c.cpu_stress_load(Region::Toky), 0.0);
    }
}
