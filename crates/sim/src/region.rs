//! The ten cloud regions of the experimental deployment (paper Fig. 4).
//!
//! The paper names six of its regions (SEAT, BEAU, EAST, GRAV, AMST, SING)
//! and states there were ten across four providers; we fill the remaining
//! four with plausible locations. Three regions host mock-up services
//! (SEAT, GRAV, SING) and three landmarks are *hidden* during training
//! (EAST, GRAV, SEAT — the paper's "new" landmarks, chosen for their
//! proximity to services and injected faults).

use serde::{Deserialize, Serialize};

/// One of the four cloud providers of the multi-cloud deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CloudProvider {
    /// Hyperscaler A (hosts SEAT, EAST, SING).
    Alpha,
    /// European provider B (hosts BEAU, GRAV, TOKY).
    Bravo,
    /// Hyperscaler C (hosts AMST, LOND).
    Charlie,
    /// Hyperscaler D (hosts FRAN, SYDN).
    Delta,
}

/// A cloud region; one landmark server is deployed in each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// Seattle, US — hosts services; hidden landmark.
    Seat,
    /// Beauharnois, Canada.
    Beau,
    /// Northern Virginia, US — hidden landmark.
    East,
    /// Gravelines, France — hosts services; hidden landmark.
    Grav,
    /// Amsterdam, Netherlands.
    Amst,
    /// Singapore — hosts services.
    Sing,
    /// London, UK.
    Lond,
    /// Frankfurt, Germany.
    Fran,
    /// Sydney, Australia.
    Sydn,
    /// Tokyo, Japan.
    Toky,
}

/// All regions, in canonical feature order.
pub const ALL_REGIONS: [Region; 10] = [
    Region::Seat,
    Region::Beau,
    Region::East,
    Region::Grav,
    Region::Amst,
    Region::Sing,
    Region::Lond,
    Region::Fran,
    Region::Sydn,
    Region::Toky,
];

/// Regions hosting mock-up services (paper §IV-A(a)).
pub const SERVICE_REGIONS: [Region; 3] = [Region::Grav, Region::Seat, Region::Sing];

/// Landmarks hidden during training (the paper's "new" landmarks, §IV-A(d)).
pub const HIDDEN_LANDMARKS: [Region; 3] = [Region::East, Region::Grav, Region::Seat];

/// Regions where faults are injected (regions "involving services",
/// §IV-A(e)).
pub const FAULT_REGIONS: [Region; 5] = [
    Region::Seat,
    Region::Beau,
    Region::Grav,
    Region::Amst,
    Region::Sing,
];

impl Region {
    /// Index in [`ALL_REGIONS`] (canonical feature ordering).
    pub fn index(self) -> usize {
        ALL_REGIONS
            .iter()
            .position(|&r| r == self)
            .expect("region in ALL_REGIONS")
    }

    /// Region from its canonical index.
    ///
    /// # Panics
    /// Panics if `idx >= 10`.
    pub fn from_index(idx: usize) -> Region {
        ALL_REGIONS[idx]
    }

    /// Four-letter region code used in paper figures.
    pub fn code(self) -> &'static str {
        match self {
            Region::Seat => "SEAT",
            Region::Beau => "BEAU",
            Region::East => "EAST",
            Region::Grav => "GRAV",
            Region::Amst => "AMST",
            Region::Sing => "SING",
            Region::Lond => "LOND",
            Region::Fran => "FRAN",
            Region::Sydn => "SYDN",
            Region::Toky => "TOKY",
        }
    }

    /// Cloud provider operating this region.
    pub fn provider(self) -> CloudProvider {
        match self {
            Region::Seat | Region::East | Region::Sing => CloudProvider::Alpha,
            Region::Beau | Region::Grav | Region::Toky => CloudProvider::Bravo,
            Region::Amst | Region::Lond => CloudProvider::Charlie,
            Region::Fran | Region::Sydn => CloudProvider::Delta,
        }
    }

    /// `(latitude, longitude)` in degrees.
    pub fn coordinates(self) -> (f64, f64) {
        match self {
            Region::Seat => (47.61, -122.33),
            Region::Beau => (45.31, -73.87),
            Region::East => (38.95, -77.45),
            Region::Grav => (50.99, 2.13),
            Region::Amst => (52.37, 4.90),
            Region::Sing => (1.35, 103.82),
            Region::Lond => (51.51, -0.13),
            Region::Fran => (50.11, 8.68),
            Region::Sydn => (-33.87, 151.21),
            Region::Toky => (35.68, 139.69),
        }
    }

    /// UTC offset in hours (approximate, for the diurnal congestion model).
    pub fn utc_offset_hours(self) -> f64 {
        match self {
            Region::Seat => -8.0,
            Region::Beau | Region::East => -5.0,
            Region::Grav | Region::Amst | Region::Fran => 1.0,
            Region::Lond => 0.0,
            Region::Sing => 8.0,
            Region::Sydn => 10.0,
            Region::Toky => 9.0,
        }
    }

    /// True if this region hosts mock-up services.
    pub fn hosts_services(self) -> bool {
        SERVICE_REGIONS.contains(&self)
    }

    /// True if this region's landmark is hidden during training.
    pub fn is_hidden_landmark(self) -> bool {
        HIDDEN_LANDMARKS.contains(&self)
    }

    /// Great-circle distance to `other` in kilometres (haversine).
    pub fn distance_km(self, other: Region) -> f64 {
        const EARTH_RADIUS_KM: f64 = 6371.0;
        let (lat1, lon1) = self.coordinates();
        let (lat2, lon2) = other.coordinates();
        let (lat1, lon1, lat2, lon2) = (
            lat1.to_radians(),
            lon1.to_radians(),
            lat2.to_radians(),
            lon2.to_radians(),
        );
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// The region of `candidates` closest to `self` (CDN "nearest region"
    /// resolution). Falls back to `self` when `candidates` is empty.
    pub fn nearest_of(self, candidates: &[Region]) -> Region {
        candidates
            .iter()
            .copied()
            .min_by(|&a, &b| {
                self.distance_km(a)
                    .partial_cmp(&self.distance_km(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(self)
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distinct_regions() {
        let mut codes: Vec<&str> = ALL_REGIONS.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 10);
    }

    #[test]
    fn four_providers_all_used() {
        let mut providers: Vec<CloudProvider> = ALL_REGIONS.iter().map(|r| r.provider()).collect();
        providers.sort_by_key(|p| format!("{p:?}"));
        providers.dedup();
        assert_eq!(providers.len(), 4);
    }

    #[test]
    fn index_round_trip() {
        for (i, &r) in ALL_REGIONS.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Region::from_index(i), r);
        }
    }

    #[test]
    fn hidden_landmarks_match_paper() {
        assert!(Region::East.is_hidden_landmark());
        assert!(Region::Grav.is_hidden_landmark());
        assert!(Region::Seat.is_hidden_landmark());
        assert!(!Region::Beau.is_hidden_landmark());
    }

    #[test]
    fn service_regions_match_paper() {
        for r in SERVICE_REGIONS {
            assert!(r.hosts_services());
        }
        assert!(!Region::Toky.hosts_services());
    }

    #[test]
    fn fault_regions_involve_services_or_their_dependencies() {
        // Paper: faults injected in SEAT, BEAU, GRAV, AMST, SING.
        assert_eq!(FAULT_REGIONS.len(), 5);
        assert!(FAULT_REGIONS.contains(&Region::Beau));
    }

    #[test]
    fn distance_symmetric_and_sane() {
        let d1 = Region::Seat.distance_km(Region::Sing);
        let d2 = Region::Sing.distance_km(Region::Seat);
        assert!((d1 - d2).abs() < 1e-6);
        assert!(d1 > 10_000.0 && d1 < 16_000.0, "SEAT-SING = {d1} km");
        assert_eq!(Region::Amst.distance_km(Region::Amst), 0.0);
        // Amsterdam-London is short.
        assert!(Region::Amst.distance_km(Region::Lond) < 500.0);
    }

    #[test]
    fn nearest_of_picks_closest() {
        // From Tokyo, Singapore is the nearest service region.
        assert_eq!(Region::Toky.nearest_of(&SERVICE_REGIONS), Region::Sing);
        // From London, Gravelines.
        assert_eq!(Region::Lond.nearest_of(&SERVICE_REGIONS), Region::Grav);
        // From Seattle, Seattle itself.
        assert_eq!(Region::Seat.nearest_of(&SERVICE_REGIONS), Region::Seat);
        // Empty candidate list falls back to self.
        assert_eq!(Region::Beau.nearest_of(&[]), Region::Beau);
    }
}
