//! Statistical regression tests of the simulator: aggregate behaviour
//! over many samples must track the model's analytical expectations.
//! These guard the *calibration* of the testbed substitute — if a future
//! change silently shifts distributions, the learnability of the dataset
//! (and every experiment) shifts with it.

use diagnet_rng::SplitMix64;
use diagnet_sim::link::LinkModel;
use diagnet_sim::region::Region;
use diagnet_sim::scenario::Scenario;
use diagnet_sim::world::World;

/// Mean of `n` sampled RTTs for one path at a fixed hour.
fn mean_rtt(model: &LinkModel, from: Region, to: Region, hour: f64, n: usize, seed: u64) -> f32 {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| model.sample(from, to, hour, &mut rng).rtt_ms)
        .sum::<f32>()
        / n as f32
}

#[test]
fn sampled_rtt_tracks_expected_value() {
    let model = LinkModel::default();
    for (a, b) in [
        (Region::Amst, Region::Lond),
        (Region::Seat, Region::Sing),
        (Region::Beau, Region::Grav),
    ] {
        let expected = model.expected_rtt_ms(a, b);
        // Off-peak hour: congestion ≈ 1, noise is mean-1 log-normal, but
        // spurious anomalies push the mean up a little.
        let measured = mean_rtt(&model, a, b, 7.0, 4000, 42);
        let ratio = measured / expected;
        assert!(
            (0.95..1.25).contains(&ratio),
            "{a}->{b}: expected {expected}, measured {measured} (ratio {ratio})"
        );
    }
}

#[test]
fn evening_congestion_visible_in_aggregate() {
    let model = LinkModel::default();
    // 20:00 local in Amsterdam = 19:00 UTC; 07:00 local is the trough.
    let peak = mean_rtt(&model, Region::Amst, Region::Fran, 19.0, 4000, 1);
    let trough = mean_rtt(&model, Region::Amst, Region::Fran, 6.0, 4000, 2);
    assert!(
        peak > trough * 1.08,
        "evening RTT should be visibly congested: {peak} vs {trough}"
    );
}

#[test]
fn anomaly_rate_matches_configuration() {
    let mut model = LinkModel::default();
    model.params.anomaly_prob = 0.10;
    model.params.noise_sigma = 0.01; // tighten noise so anomalies stand out
    let expected = model.expected_conditions(Region::Beau, Region::Grav);
    let mut rng = SplitMix64::new(3);
    let n = 10_000;
    let mut outliers = 0;
    for _ in 0..n {
        let c = model.sample(Region::Beau, Region::Grav, 7.0, &mut rng);
        // Any of the four anomaly flavours leaves a distinctive trace.
        if c.rtt_ms > expected.rtt_ms * 1.4
            || c.jitter_ms > expected.jitter_ms + 9.0
            || c.loss > 0.004
            || c.down_capacity_mbps < expected.down_capacity_mbps * 0.65
        {
            outliers += 1;
        }
    }
    let rate = outliers as f32 / n as f32;
    assert!(
        (0.07..0.14).contains(&rate),
        "anomaly rate {rate} should be near the configured 0.10"
    );
}

#[test]
fn qoe_degradation_rate_is_moderate_under_nominal_conditions() {
    // Under fault-free scenarios QoE noise alone should rarely cross the
    // degradation threshold (paper: nominal samples vastly outnumber
    // faulty ones).
    let world = World::new();
    let mut degraded = 0;
    let mut total = 0;
    for (i, &client) in diagnet_sim::region::ALL_REGIONS.iter().enumerate() {
        for sid in world.catalog.all_ids() {
            for seed in 0..20u64 {
                let obs = world.observe(
                    client,
                    sid,
                    &Scenario::nominal(12.0),
                    8000 + i as u64 * 1000 + sid.0 as u64 * 50 + seed,
                );
                total += 1;
                let threshold = world.nominal_plt(client, sid)
                    * diagnet_sim::service::QOE_DEGRADATION_FACTOR
                    + diagnet_sim::service::QOE_SLACK_S;
                if obs.plt_s > threshold {
                    degraded += 1;
                }
            }
        }
    }
    let rate = degraded as f32 / total as f32;
    assert!(
        rate < 0.10,
        "spurious QoE degradation should be rare under nominal conditions: {rate}"
    );
}

#[test]
fn fault_magnitudes_dominate_noise_in_aggregate() {
    // Per fault family, the faulted metric's mean shift across many
    // observations must exceed the nominal standard deviation — otherwise
    // the dataset is unlearnable and every experiment is meaningless.
    use diagnet_sim::fault::{Fault, FaultFamily};
    use diagnet_sim::metrics::{FeatureId, FeatureSchema, LandmarkMetric};
    let world = World::new();
    let schema = FeatureSchema::full();
    let sid = world.catalog.all_ids()[0];
    let client = Region::Amst;
    let cases = [
        (FaultFamily::ServiceLatency, LandmarkMetric::Rtt),
        (FaultFamily::Jitter, LandmarkMetric::Jitter),
        (FaultFamily::PacketLoss, LandmarkMetric::LossRetrans),
        (FaultFamily::BandwidthShaping, LandmarkMetric::DownBw),
    ];
    for (family, metric) in cases {
        let fault = Fault::new(family, Region::Grav);
        let idx = schema
            .index_of(FeatureId::Landmark(Region::Grav, metric))
            .unwrap();
        let collect = |scenario: &Scenario, base: u64| -> Vec<f32> {
            (0..300u64)
                .map(|s| world.observe(client, sid, scenario, base + s).features[idx])
                .collect()
        };
        let nominal = collect(&Scenario::nominal(12.0), 100);
        let faulty = collect(&Scenario::with_faults(vec![fault], 12.0), 5000);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let std = |v: &[f32], mu: f32| {
            (v.iter().map(|x| (x - mu) * (x - mu)).sum::<f32>() / v.len() as f32).sqrt()
        };
        let mu_n = mean(&nominal);
        let sigma_n = std(&nominal, mu_n).max(1e-6);
        let shift = (mean(&faulty) - mu_n).abs();
        assert!(
            shift > sigma_n,
            "{family:?}: shift {shift} must exceed nominal σ {sigma_n} on {metric:?}"
        );
    }
}
