//! Property-based tests of the simulator: schema algebra, link-model
//! bounds, fault application laws and QoE monotonicity must hold for
//! arbitrary inputs.

use diagnet_rng::SplitMix64;
use diagnet_sim::fault::{Fault, ALL_FAULT_FAMILIES};
use diagnet_sim::link::LinkModel;
use diagnet_sim::metrics::{FeatureSchema, K_LANDMARK_METRICS, N_LOCAL_METRICS};
use diagnet_sim::region::{Region, ALL_REGIONS};
use diagnet_sim::scenario::{Scenario, ScenarioGenerator};
use diagnet_sim::service::ServiceId;
use diagnet_sim::world::World;
use proptest::prelude::*;

fn region() -> impl Strategy<Value = Region> {
    (0usize..ALL_REGIONS.len()).prop_map(Region::from_index)
}

fn fault() -> impl Strategy<Value = Fault> {
    ((0usize..ALL_FAULT_FAMILIES.len()), region())
        .prop_map(|(f, r)| Fault::new(ALL_FAULT_FAMILIES[f], r))
}

/// A subset of regions encoded as a bitmask (never empty).
fn region_subset() -> impl Strategy<Value = Vec<Region>> {
    (1u16..1024).prop_map(|mask| {
        ALL_REGIONS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &r)| r)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ------------------------------------------------------------------
    // Schema algebra.
    // ------------------------------------------------------------------

    /// Feature ↔ index round trips for any landmark subset.
    #[test]
    fn schema_round_trip(landmarks in region_subset()) {
        let schema = FeatureSchema::new(landmarks.clone());
        prop_assert_eq!(schema.n_features(), landmarks.len() * K_LANDMARK_METRICS + N_LOCAL_METRICS);
        for i in 0..schema.n_features() {
            prop_assert_eq!(schema.index_of(schema.feature(i)), Some(i));
        }
    }

    /// Projecting full → subset → full preserves subset features and fills
    /// the rest.
    #[test]
    fn projection_round_trip(landmarks in region_subset(), fill in -5.0f32..5.0) {
        let full = FeatureSchema::full();
        let sub = FeatureSchema::new(landmarks);
        let values: Vec<f32> = (0..full.n_features()).map(|i| i as f32).collect();
        let down = sub.project_from(&full, &values, fill);
        let up = full.project_from(&sub, &down, fill);
        for i in 0..full.n_features() {
            if sub.index_of(full.feature(i)).is_some() {
                prop_assert_eq!(up[i], values[i]);
            } else {
                prop_assert_eq!(up[i], fill);
            }
        }
    }

    /// The unknown set partitions features: unknown ∪ mapped = all.
    #[test]
    fn unknown_set_partition(landmarks in region_subset()) {
        let full = FeatureSchema::full();
        let sub = FeatureSchema::new(landmarks);
        let unknown = full.unknown_relative_to(&sub);
        let mapped = (0..full.n_features())
            .filter(|&i| sub.index_of(full.feature(i)).is_some())
            .count();
        prop_assert_eq!(unknown.len() + mapped, full.n_features());
    }

    // ------------------------------------------------------------------
    // Link model.
    // ------------------------------------------------------------------

    /// Sampled conditions are finite, positive and bounded for every pair
    /// of regions, hour and seed.
    #[test]
    fn link_samples_bounded(a in region(), b in region(), hour in 0.0f64..24.0, seed in 0u64..10_000) {
        let model = LinkModel::default();
        let c = model.sample(a, b, hour, &mut SplitMix64::new(seed));
        prop_assert!(c.rtt_ms > 0.0 && c.rtt_ms < 2000.0);
        prop_assert!(c.jitter_ms >= 0.0 && c.jitter_ms < 500.0);
        prop_assert!((0.0..0.2).contains(&c.loss));
        prop_assert!(c.down_capacity_mbps > 0.0);
        prop_assert!(c.up_capacity_mbps > 0.0);
        prop_assert!(c.effective_down_mbps() <= c.down_capacity_mbps + 1e-3);
    }

    /// Expected RTT satisfies the triangle-ish sanity: same-region is the
    /// minimum of all destinations from a region.
    #[test]
    fn same_region_rtt_is_minimal(a in region()) {
        let model = LinkModel::default();
        let local = model.expected_rtt_ms(a, a);
        for &b in &ALL_REGIONS {
            prop_assert!(local <= model.expected_rtt_ms(a, b) + 1e-6);
        }
    }

    /// More loss can only reduce effective throughput.
    #[test]
    fn loss_monotone_in_throughput(a in region(), b in region(), extra in 0.0f32..0.1) {
        let model = LinkModel::default();
        let base = model.expected_conditions(a, b);
        let mut lossy = base;
        lossy.loss += extra;
        prop_assert!(lossy.effective_down_mbps() <= base.effective_down_mbps() + 1e-4);
    }

    // ------------------------------------------------------------------
    // Faults.
    // ------------------------------------------------------------------

    /// Fault application never produces invalid conditions, and only
    /// affected paths change.
    #[test]
    fn fault_application_sound(f in fault(), a in region(), b in region(), seed in 0u64..1000) {
        let model = LinkModel::default();
        let before = model.expected_conditions(a, b);
        let mut after = before;
        f.apply_to_path(&mut after, a, b, &mut SplitMix64::new(seed));
        prop_assert!(after.rtt_ms >= before.rtt_ms);
        prop_assert!(after.loss >= before.loss && after.loss <= 1.0);
        prop_assert!(after.down_capacity_mbps <= before.down_capacity_mbps);
        if !f.affects_path(a, b) {
            prop_assert_eq!(after, before);
        }
    }

    /// The deterministic fault variant is idempotent in expectation form:
    /// applying to an unaffected path is a no-op.
    #[test]
    fn expected_fault_respects_scope(f in fault(), a in region(), b in region()) {
        let model = LinkModel::default();
        let mut cond = model.expected_conditions(a, b);
        let before = cond;
        f.apply_to_path_expected(&mut cond, a, b);
        if !f.affects_path(a, b) {
            prop_assert_eq!(cond, before);
        }
    }

    /// Every fault's cause feature belongs to the fault's coarse family.
    #[test]
    fn cause_feature_family_consistent(f in fault()) {
        prop_assert_eq!(f.cause_feature().family(), f.family.coarse());
    }

    // ------------------------------------------------------------------
    // Scenario generation.
    // ------------------------------------------------------------------

    /// Scenarios are valid: hours within the day, fault counts within the
    /// generator's contract, faults drawn from the configured space.
    #[test]
    fn scenarios_valid(index in 0u64..5000, seed in 0u64..100) {
        let g = ScenarioGenerator::standard();
        let s = g.generate(index, seed);
        prop_assert!((0.0..24.0).contains(&s.hour_utc));
        prop_assert!(s.faults.len() <= 2);
        for f in &s.faults {
            prop_assert!(g.fault_regions.contains(&f.region));
            prop_assert!(g.families.contains(&f.family));
        }
    }

    // ------------------------------------------------------------------
    // World / QoE.
    // ------------------------------------------------------------------

    /// Observations always have exactly m features, all finite and
    /// non-negative, for any client/service/scenario/seed.
    #[test]
    fn observations_well_formed(
        client in region(),
        service in 0usize..10,
        f in fault(),
        seed in 0u64..5000,
    ) {
        let world = World::new();
        let scenario = Scenario::with_faults(vec![f], 12.0);
        let obs = world.observe(client, ServiceId(service), &scenario, seed);
        prop_assert_eq!(obs.features.len(), 55);
        prop_assert!(obs.features.iter().all(|v| v.is_finite() && *v >= 0.0));
        prop_assert!(obs.plt_s > 0.0 && obs.plt_s < 120.0);
        // A faulty label always names one of the scenario's faults.
        if let Some(cause) = obs.label.cause() {
            prop_assert!(scenario.faults.iter().any(|f| f.cause_feature() == cause));
        }
    }

    /// Adding a fault can only increase the deterministic PLT.
    #[test]
    fn faults_never_speed_pages_up(client in region(), service in 0usize..10, f in fault()) {
        let world = World::new();
        let sid = ServiceId(service);
        let nominal = world.nominal_plt(client, sid);
        let with_fault = world.expected_plt(client, sid, &[&f]);
        prop_assert!(with_fault >= nominal - 1e-5, "{with_fault} < {nominal}");
    }
}
