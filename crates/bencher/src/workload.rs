//! Workload construction: realistic request bodies, pre-rendered.
//!
//! Bodies come from the simulator — a seeded [`Dataset`] generation — so
//! the server sees the same feature distributions the training path does.
//! Everything is rendered to JSON strings *before* the clock starts:
//! during the measured window a worker only picks an index and writes
//! bytes, so the generator adds no per-request latency noise.

use diagnet_rng::SplitMix64;
use diagnet_server::Json;
use diagnet_sim::dataset::{Dataset, DatasetConfig, Sample, SimError};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::{Label, World};

/// Magnitude used for corrupt probes. JSON cannot carry NaN, so corrupt
/// means "absurd magnitude": far above the admission gate's default
/// `max_magnitude` (1e9), guaranteeing a `magnitude` reject.
const CORRUPT_VALUE: f64 = 1.0e12;

/// Probe mix knobs (all fractions in `[0, 1]`).
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Fraction of requests that are diagnoses (the rest are submits).
    pub diagnose_frac: f64,
    /// Fraction of *diagnose* requests that are batches.
    pub batch_frac: f64,
    /// Fraction of requests sent with a corrupt (absurd-magnitude) probe.
    pub corrupt_frac: f64,
}

/// One ready-to-send request.
#[derive(Debug)]
pub struct RequestTemplate {
    /// Route bucket for stats (`submit` / `diagnose` / `diagnose_batch`).
    pub route: &'static str,
    /// HTTP method.
    pub method: &'static str,
    /// Request path.
    pub path: &'static str,
    /// Pre-rendered JSON body.
    pub body: String,
}

/// A pool of pre-rendered requests.
pub struct Workload {
    submit: Vec<RequestTemplate>,
    submit_corrupt: Vec<RequestTemplate>,
    diagnose: Vec<RequestTemplate>,
    diagnose_corrupt: Vec<RequestTemplate>,
    batch: Vec<RequestTemplate>,
}

impl Workload {
    /// Generate a seeded dataset of `scenarios` fault scenarios and render
    /// every sample into submit/diagnose/batch/corrupt request bodies.
    pub fn build(scenarios: usize, seed: u64, batch_size: usize) -> Result<Workload, SimError> {
        let world = World::new();
        let config = DatasetConfig::standard(&world, scenarios.max(1), seed);
        let data = Dataset::generate(&world, &config)?;
        let schema = &data.schema;

        let mut submit = Vec::with_capacity(data.samples.len());
        let mut diagnose = Vec::with_capacity(data.samples.len());
        for sample in &data.samples {
            submit.push(RequestTemplate {
                route: "submit",
                method: "POST",
                path: "/v1/submit",
                body: submit_body(sample, schema).render(),
            });
            diagnose.push(RequestTemplate {
                route: "diagnose",
                method: "POST",
                path: "/v1/diagnose",
                body: diagnose_body(sample).render(),
            });
        }

        let batch_size = batch_size.max(1);
        let batch = data
            .samples
            .chunks(batch_size)
            .filter(|c| c.len() == batch_size)
            .map(|chunk| {
                let service = chunk.first().map(|s| s.service.0).unwrap_or(0);
                let probes = chunk.iter().map(|s| features_json(&s.features)).collect();
                RequestTemplate {
                    route: "diagnose_batch",
                    method: "POST",
                    path: "/v1/diagnose",
                    body: Json::obj(vec![
                        ("service", Json::Num(service as f64)),
                        ("probes", Json::Arr(probes)),
                    ])
                    .render(),
                }
            })
            .collect();

        // Corrupt variants: a handful is plenty, they all get rejected the
        // same way.
        let submit_corrupt = data
            .samples
            .iter()
            .take(32)
            .map(|s| RequestTemplate {
                route: "submit",
                method: "POST",
                path: "/v1/submit",
                body: corrupt_body(s, "plt_s"),
            })
            .collect();
        let diagnose_corrupt = data
            .samples
            .iter()
            .take(32)
            .map(|s| RequestTemplate {
                route: "diagnose",
                method: "POST",
                path: "/v1/diagnose",
                body: corrupt_body(s, "top"),
            })
            .collect();

        Ok(Workload {
            submit,
            submit_corrupt,
            diagnose,
            diagnose_corrupt,
            batch,
        })
    }

    /// Pick the next request per the mix, deterministically from `rng`.
    pub fn pick(&self, rng: &mut SplitMix64, mix: &Mix) -> &RequestTemplate {
        let diagnose = rng.next_f64() < mix.diagnose_frac;
        let corrupt = rng.next_f64() < mix.corrupt_frac;
        let pool = if diagnose {
            if !self.batch.is_empty() && rng.next_f64() < mix.batch_frac {
                &self.batch
            } else if corrupt && !self.diagnose_corrupt.is_empty() {
                &self.diagnose_corrupt
            } else {
                &self.diagnose
            }
        } else if corrupt && !self.submit_corrupt.is_empty() {
            &self.submit_corrupt
        } else {
            &self.submit
        };
        // Pools are non-empty by construction (≥1 scenario ⇒ ≥1 sample);
        // the healthz fallback only exists to keep this path total.
        let idx = rng.next_below(pool.len().max(1));
        pool.get(idx).unwrap_or_else(|| fallback_template())
    }

    /// Number of distinct pre-rendered requests (for the report).
    pub fn pool_sizes(&self) -> (usize, usize, usize) {
        (self.submit.len(), self.diagnose.len(), self.batch.len())
    }
}

fn fallback_template() -> &'static RequestTemplate {
    static FALLBACK: std::sync::OnceLock<RequestTemplate> = std::sync::OnceLock::new();
    FALLBACK.get_or_init(|| RequestTemplate {
        route: "healthz",
        method: "GET",
        path: "/healthz",
        body: String::new(),
    })
}

fn features_json(features: &[f32]) -> Json {
    Json::Arr(features.iter().map(|&v| Json::from_f32(v)).collect())
}

fn submit_body(sample: &Sample, schema: &FeatureSchema) -> Json {
    let label = match &sample.label {
        Label::Nominal => Json::Null,
        Label::Faulty { cause, region, .. } => match schema.index_of(*cause) {
            Some(idx) => Json::obj(vec![
                ("cause_index", Json::Num(idx as f64)),
                ("region", Json::str(region.code())),
            ]),
            None => Json::Null,
        },
    };
    Json::obj(vec![
        ("features", features_json(&sample.features)),
        ("service", Json::Num(sample.service.0 as f64)),
        ("region", Json::str(sample.client_region.code())),
        ("plt_s", Json::from_f32(sample.plt_s)),
        ("label", label),
    ])
}

fn diagnose_body(sample: &Sample) -> Json {
    Json::obj(vec![
        ("features", features_json(&sample.features)),
        ("service", Json::Num(sample.service.0 as f64)),
        ("top", Json::Num(3.0)),
    ])
}

/// A corrupt body: the probe's first feature replaced by an absurd
/// magnitude. `extra_key` keeps the body shape of its clean counterpart.
fn corrupt_body(sample: &Sample, extra_key: &str) -> String {
    let mut features: Vec<Json> = sample.features.iter().map(|&v| Json::from_f32(v)).collect();
    if let Some(first) = features.first_mut() {
        *first = Json::Num(CORRUPT_VALUE);
    }
    let extra = if extra_key == "plt_s" {
        (extra_key.to_string(), Json::from_f32(sample.plt_s))
    } else {
        (extra_key.to_string(), Json::Num(3.0))
    };
    Json::Obj(vec![
        ("features".to_string(), Json::Arr(features)),
        ("service".to_string(), Json::Num(sample.service.0 as f64)),
        extra,
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workload {
        Workload::build(2, 7, 4).expect("tiny workload builds")
    }

    #[test]
    fn pools_are_populated_and_bodies_parse() {
        let w = tiny();
        let (submit, diagnose, batch) = w.pool_sizes();
        assert!(submit > 0 && diagnose > 0 && batch > 0);
        for t in w.submit.iter().chain(&w.diagnose).chain(&w.batch) {
            let doc = Json::parse(&t.body).expect("body parses");
            assert!(doc.get("service").is_some(), "{}", t.body);
        }
    }

    #[test]
    fn corrupt_bodies_carry_absurd_magnitude() {
        let w = tiny();
        let t = w.submit_corrupt.first().expect("corrupt pool non-empty");
        let doc = Json::parse(&t.body).expect("parses");
        let first = doc
            .get("features")
            .and_then(Json::as_arr)
            .and_then(|a| a.first())
            .and_then(Json::as_f64)
            .expect("first feature");
        assert!(first > 1e9, "corrupt magnitude should exceed the gate");
    }

    #[test]
    fn pick_is_deterministic_and_respects_mix() {
        let w = tiny();
        let mix = Mix {
            diagnose_frac: 0.5,
            batch_frac: 0.2,
            corrupt_frac: 0.1,
        };
        let seq_a: Vec<&str> = {
            let mut rng = SplitMix64::new(42);
            (0..50).map(|_| w.pick(&mut rng, &mix).route).collect()
        };
        let seq_b: Vec<&str> = {
            let mut rng = SplitMix64::new(42);
            (0..50).map(|_| w.pick(&mut rng, &mix).route).collect()
        };
        assert_eq!(seq_a, seq_b, "same seed, same sequence");
        assert!(seq_a.iter().any(|r| *r == "submit"));
        assert!(seq_a.iter().any(|r| *r == "diagnose"));

        let all_submit = Mix {
            diagnose_frac: 0.0,
            batch_frac: 0.0,
            corrupt_frac: 0.0,
        };
        let mut rng = SplitMix64::new(1);
        assert!((0..20).all(|_| w.pick(&mut rng, &all_submit).route == "submit"));
    }
}
