//! The load-generation driver: closed- and open-loop modes.
//!
//! **Closed loop** models a fixed fleet of clients that each wait for the
//! previous response before sending the next request: throughput is
//! whatever the server sustains, and latency excludes queueing the client
//! itself caused. **Open loop** models arrivals from a large population at
//! a fixed target rate: each worker sends on a fixed schedule and latency
//! is measured from the request's *scheduled* time, so a stalling server
//! accrues queueing delay in the percentiles instead of silently slowing
//! the generator down (the coordinated-omission trap).
//!
//! Requests issued during the warmup window are sent but not recorded.

use crate::client::HttpClient;
use crate::stats::{per_route, round2, RequestRecord};
use crate::workload::{Mix, Workload};
use diagnet_rng::SplitMix64;
use diagnet_server::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Arrival model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Back-to-back requests per worker.
    Closed,
    /// Fixed aggregate arrival rate (requests/second) across all workers.
    Open {
        /// Target requests per second.
        rate: f64,
    },
}

/// Full bench configuration (CLI flags map 1:1 onto these fields; see
/// `SERVING.md`).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Arrival model.
    pub mode: Mode,
    /// Concurrent connections (= worker threads).
    pub concurrency: usize,
    /// Measured window, *after* warmup.
    pub duration: Duration,
    /// Unrecorded warmup window.
    pub warmup: Duration,
    /// Probe mix.
    pub mix: Mix,
    /// Probes per batch-diagnose request.
    pub batch_size: usize,
    /// Master seed (workload generation and per-worker request picking).
    pub seed: u64,
    /// Fault scenarios in the pre-rendered request pool.
    pub scenarios: usize,
    /// How long to retry the initial connection (server may still be
    /// starting).
    pub connect_timeout: Duration,
    /// Per-request socket timeout.
    pub request_timeout: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            addr: "127.0.0.1:8080".to_string(),
            mode: Mode::Closed,
            concurrency: 4,
            duration: Duration::from_secs(10),
            warmup: Duration::from_secs(2),
            mix: Mix {
                diagnose_frac: 0.5,
                batch_frac: 0.1,
                corrupt_frac: 0.02,
            },
            batch_size: 16,
            seed: 42,
            scenarios: 10,
            connect_timeout: Duration::from_secs(10),
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a bench could not run.
#[derive(Debug)]
pub enum BenchError {
    /// A knob is out of range.
    Config(String),
    /// Workload generation failed.
    Sim(diagnet_sim::dataset::SimError),
    /// No worker ever reached the server.
    Connect(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Config(msg) => write!(f, "bad bench configuration: {msg}"),
            BenchError::Sim(e) => write!(f, "workload generation failed: {e}"),
            BenchError::Connect(msg) => write!(f, "could not reach the server: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

/// The outcome of a bench run: the committed-artefact JSON plus a few
/// headline numbers for the CLI summary.
#[derive(Debug)]
pub struct BenchReport {
    /// Everything, as the `BENCH_serving.json` document.
    pub json: Json,
    /// Requests completed in the measured window.
    pub total_requests: u64,
    /// Achieved requests/second over the measured window.
    pub achieved_rps: f64,
    /// Requests that failed at the transport level (never got a status).
    pub connection_errors: u64,
}

impl BenchReport {
    /// One-paragraph human summary (the CLI prints this).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} requests in the measured window ({} rps achieved, {} connection errors)\n",
            self.total_requests,
            round2(self.achieved_rps),
            self.connection_errors
        );
        if let Some(routes) = self.json.get("routes") {
            if let Json::Obj(pairs) = routes {
                for (route, stats) in pairs {
                    let g = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                    out.push_str(&format!(
                        "  {route:>14}: {:>8} reqs  p50 {:>7}us  p95 {:>7}us  p99 {:>7}us\n",
                        g("count"),
                        g("p50_us"),
                        g("p95_us"),
                        g("p99_us"),
                    ));
                }
            }
        }
        let top = |k: &str| self.json.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "  shed(429): {}  rejected(400): {}\n",
            top("shed_429"),
            top("rejected_400"),
        ));
        out
    }
}

fn validate(config: &BenchConfig) -> Result<(), BenchError> {
    let frac_ok = |v: f64| (0.0..=1.0).contains(&v);
    if !frac_ok(config.mix.diagnose_frac)
        || !frac_ok(config.mix.batch_frac)
        || !frac_ok(config.mix.corrupt_frac)
    {
        return Err(BenchError::Config(
            "probe-mix fractions must be within [0, 1]".to_string(),
        ));
    }
    if config.concurrency == 0 {
        return Err(BenchError::Config(
            "concurrency must be at least 1".to_string(),
        ));
    }
    if config.duration.is_zero() {
        return Err(BenchError::Config("duration must be positive".to_string()));
    }
    if let Mode::Open { rate } = config.mode {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(BenchError::Config(
                "open-loop mode requires a positive --rate".to_string(),
            ));
        }
    }
    Ok(())
}

/// Run the bench to completion and aggregate the report.
pub fn run(config: &BenchConfig) -> Result<BenchReport, BenchError> {
    validate(config)?;
    let workload = Arc::new(
        Workload::build(config.scenarios, config.seed, config.batch_size)
            .map_err(BenchError::Sim)?,
    );

    let start = Instant::now();
    let warmup_end = start + config.warmup;
    let deadline = warmup_end + config.duration;
    let connect_deadline = start + config.connect_timeout;

    let worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.concurrency)
            .map(|i| {
                let workload = Arc::clone(&workload);
                scope.spawn(move || {
                    run_worker(
                        i,
                        config,
                        &workload,
                        start,
                        warmup_end,
                        deadline,
                        connect_deadline,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });

    if worker_results.iter().all(|w| !w.connected) {
        return Err(BenchError::Connect(format!(
            "no worker could connect to {} within {:?}",
            config.addr, config.connect_timeout
        )));
    }

    let mut records = Vec::new();
    let mut connection_errors = 0u64;
    for mut w in worker_results {
        records.append(&mut w.records);
        connection_errors += w.connection_errors;
    }
    Ok(build_report(config, &records, connection_errors))
}

#[derive(Default)]
struct WorkerResult {
    records: Vec<RequestRecord>,
    connection_errors: u64,
    connected: bool,
}

fn run_worker(
    index: usize,
    config: &BenchConfig,
    workload: &Workload,
    start: Instant,
    warmup_end: Instant,
    deadline: Instant,
    connect_deadline: Instant,
) -> WorkerResult {
    let mut out = WorkerResult::default();
    let mut client = HttpClient::new(config.addr.clone(), config.request_timeout);
    if client.connect_until(connect_deadline).is_err() {
        return out;
    }
    out.connected = true;
    let mut rng = SplitMix64::new(SplitMix64::derive(config.seed, index as u64 + 1));

    // Open loop: this worker owns every `concurrency`-th arrival of the
    // aggregate schedule, staggered by its index.
    let interval = match config.mode {
        Mode::Closed => None,
        Mode::Open { rate } => Some(Duration::from_secs_f64(config.concurrency as f64 / rate)),
    };
    let offset = match (config.mode, interval) {
        (Mode::Open { rate }, Some(_)) => Duration::from_secs_f64(index as f64 / rate),
        _ => Duration::ZERO,
    };

    let mut k: u64 = 0;
    loop {
        // The latency origin: scheduled arrival under open loop, send time
        // under closed loop.
        let origin = match interval {
            None => Instant::now(),
            Some(step) => {
                let scheduled = start + offset + step.mul_f64(k as f64);
                k += 1;
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                scheduled
            }
        };
        if origin >= deadline || Instant::now() >= deadline {
            break;
        }
        let template = workload.pick(&mut rng, &config.mix);
        let body = (!template.body.is_empty()).then_some(template.body.as_str());
        match client.request(template.method, template.path, body) {
            Ok((status, _body)) => {
                if origin >= warmup_end {
                    out.records.push(RequestRecord {
                        route: template.route,
                        status,
                        latency: origin.elapsed(),
                    });
                }
            }
            Err(_) => {
                if origin >= warmup_end {
                    out.connection_errors += 1;
                }
            }
        }
    }
    out
}

fn build_report(
    config: &BenchConfig,
    records: &[RequestRecord],
    connection_errors: u64,
) -> BenchReport {
    let elapsed = config.duration;
    let routes = per_route(records);
    let total: u64 = routes.values().map(|s| s.count).sum();
    let achieved_rps = total as f64 / elapsed.as_secs_f64().max(1e-9);

    let mut status_counts: BTreeMap<u16, u64> = BTreeMap::new();
    for stats in routes.values() {
        for (code, n) in &stats.statuses {
            *status_counts.entry(*code).or_default() += n;
        }
    }
    let shed_429 = status_counts.get(&429).copied().unwrap_or(0);
    let rejected_400 = status_counts.get(&400).copied().unwrap_or(0);

    let (mode, target_rate) = match config.mode {
        Mode::Closed => ("closed", Json::Null),
        Mode::Open { rate } => ("open", Json::Num(rate)),
    };
    let json = Json::obj(vec![
        ("experiment", Json::str("serving")),
        ("mode", Json::str(mode)),
        ("target_rate", target_rate),
        ("concurrency", Json::Num(config.concurrency as f64)),
        ("duration_s", Json::Num(round2(elapsed.as_secs_f64()))),
        ("warmup_s", Json::Num(round2(config.warmup.as_secs_f64()))),
        ("seed", Json::Num(config.seed as f64)),
        ("scenarios", Json::Num(config.scenarios as f64)),
        ("diagnose_frac", Json::Num(config.mix.diagnose_frac)),
        ("batch_frac", Json::Num(config.mix.batch_frac)),
        ("batch_size", Json::Num(config.batch_size as f64)),
        ("corrupt_frac", Json::Num(config.mix.corrupt_frac)),
        ("total_requests", Json::Num(total as f64)),
        ("achieved_rps", Json::Num(round2(achieved_rps))),
        ("connection_errors", Json::Num(connection_errors as f64)),
        ("shed_429", Json::Num(shed_429 as f64)),
        ("rejected_400", Json::Num(rejected_400 as f64)),
        (
            "status_counts",
            Json::Obj(
                status_counts
                    .iter()
                    .map(|(code, n)| (code.to_string(), Json::Num(*n as f64)))
                    .collect(),
            ),
        ),
        (
            "routes",
            Json::Obj(
                routes
                    .iter()
                    .map(|(route, stats)| (route.to_string(), stats.to_json(elapsed)))
                    .collect(),
            ),
        ),
    ]);
    BenchReport {
        json,
        total_requests: total,
        achieved_rps,
        connection_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_knobs() {
        let ok = BenchConfig::default();
        assert!(validate(&ok).is_ok());
        let mut bad = ok.clone();
        bad.mix.corrupt_frac = 1.5;
        assert!(matches!(validate(&bad), Err(BenchError::Config(_))));
        let mut bad = ok.clone();
        bad.concurrency = 0;
        assert!(matches!(validate(&bad), Err(BenchError::Config(_))));
        let mut bad = ok.clone();
        bad.mode = Mode::Open { rate: 0.0 };
        assert!(matches!(validate(&bad), Err(BenchError::Config(_))));
        let mut bad = ok;
        bad.duration = Duration::ZERO;
        assert!(matches!(validate(&bad), Err(BenchError::Config(_))));
    }

    #[test]
    fn report_shape_matches_experiments_doc() {
        let records = vec![
            RequestRecord {
                route: "submit",
                status: 200,
                latency: Duration::from_micros(100),
            },
            RequestRecord {
                route: "submit",
                status: 429,
                latency: Duration::from_micros(50),
            },
            RequestRecord {
                route: "diagnose",
                status: 400,
                latency: Duration::from_micros(70),
            },
        ];
        let config = BenchConfig {
            duration: Duration::from_secs(1),
            ..BenchConfig::default()
        };
        let report = build_report(&config, &records, 2);
        let j = &report.json;
        for key in [
            "experiment",
            "mode",
            "target_rate",
            "concurrency",
            "duration_s",
            "warmup_s",
            "seed",
            "scenarios",
            "diagnose_frac",
            "batch_frac",
            "batch_size",
            "corrupt_frac",
            "total_requests",
            "achieved_rps",
            "connection_errors",
            "shed_429",
            "rejected_400",
            "status_counts",
            "routes",
        ] {
            assert!(j.get(key).is_some(), "missing field `{key}`");
        }
        assert_eq!(j.get("total_requests").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("shed_429").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("rejected_400").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("connection_errors").and_then(Json::as_f64), Some(2.0));
        // The document round-trips through the parser (jq-compatible).
        let pretty = j.render_pretty();
        assert_eq!(&Json::parse(&pretty).expect("parses"), j);
    }

    #[test]
    fn closed_loop_report_has_null_rate() {
        let report = build_report(&BenchConfig::default(), &[], 0);
        assert_eq!(report.json.get("target_rate"), Some(&Json::Null));
        assert_eq!(
            report.json.get("mode").and_then(Json::as_str),
            Some("closed")
        );
    }
}
