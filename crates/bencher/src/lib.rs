//! # diagnet-bencher — TCP load generation for the serving edge
//!
//! Drives a running `diagnet-server` over real sockets and reports what
//! operators actually need to publish: achieved throughput and p50/p95/p99
//! latency *per route*, plus shed (429), reject (400) and transport-error
//! counts. The committed `BENCH_serving.json` at the repo root is this
//! crate's output (field reference: `EXPERIMENTS.md`).
//!
//! Three design points, argued in module docs:
//!
//! * [`run`] — closed- vs open-loop arrival models, and why open-loop
//!   latency is measured from the *scheduled* arrival time (coordinated
//!   omission);
//! * [`workload`] — request bodies are simulator-generated and fully
//!   pre-rendered, so the generator adds no per-request noise;
//! * [`stats`] — percentiles are exact nearest-rank over all retained
//!   samples, not a sketch.
//!
//! Everything is seeded: same seed, same request sequence per worker.

pub mod client;
pub mod run;
pub mod stats;
pub mod workload;

pub use client::HttpClient;
pub use run::{run, BenchConfig, BenchError, BenchReport, Mode};
pub use stats::{per_route, percentile, RequestRecord, RouteStats};
pub use workload::{Mix, Workload};
