//! Latency statistics: exact nearest-rank percentiles and per-route
//! aggregation.
//!
//! The bencher keeps every post-warmup latency sample in memory (a few
//! hundred thousand `u64`s at most), so percentiles are computed *exactly*
//! from the sorted vector rather than from a sketch — at bench scale there
//! is no reason to approximate, and "Scalable Tail Latency Estimation"
//! (PAPERS.md) is the reminder that serving numbers are tails, not means.

use diagnet_server::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// One completed request, as recorded by a bench worker.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Route bucket (`submit` / `diagnose` / `diagnose_batch`).
    pub route: &'static str,
    /// HTTP status of the response.
    pub status: u16,
    /// End-to-end latency. Under open-loop load this is measured from the
    /// request's *scheduled* start, so queueing delay from a slow server
    /// is included (no coordinated omission).
    pub latency: Duration,
}

/// Exact nearest-rank percentile of an ascending-sorted slice:
/// the smallest value with at least `q·n` samples at or below it
/// (`sorted[⌈q·n⌉ − 1]`). `q` is in `(0, 1]`.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted.len()) - 1;
    sorted.get(idx).copied().unwrap_or(0)
}

/// Aggregated statistics for one route.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteStats {
    /// Requests observed.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Percentile latencies, microseconds.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Slowest observed request.
    pub max_us: u64,
    /// Responses by status code.
    pub statuses: BTreeMap<u16, u64>,
}

/// Compute per-route statistics from raw records.
pub fn per_route(records: &[RequestRecord]) -> BTreeMap<&'static str, RouteStats> {
    let mut latencies: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut statuses: BTreeMap<&'static str, BTreeMap<u16, u64>> = BTreeMap::new();
    for r in records {
        latencies
            .entry(r.route)
            .or_default()
            .push(r.latency.as_micros() as u64);
        *statuses
            .entry(r.route)
            .or_default()
            .entry(r.status)
            .or_default() += 1;
    }
    latencies
        .into_iter()
        .map(|(route, mut lat)| {
            lat.sort_unstable();
            let count = lat.len() as u64;
            let mean_us = lat.iter().sum::<u64>() as f64 / count.max(1) as f64;
            let stats = RouteStats {
                count,
                mean_us,
                p50_us: percentile(&lat, 0.50),
                p95_us: percentile(&lat, 0.95),
                p99_us: percentile(&lat, 0.99),
                max_us: lat.last().copied().unwrap_or(0),
                statuses: statuses.remove(route).unwrap_or_default(),
            };
            (route, stats)
        })
        .collect()
}

impl RouteStats {
    /// Render as a JSON object (plus the achieved per-route rate, given
    /// the measured window).
    pub fn to_json(&self, elapsed: Duration) -> Json {
        let rps = self.count as f64 / elapsed.as_secs_f64().max(1e-9);
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("rps", Json::Num(round2(rps))),
            ("mean_us", Json::Num(round2(self.mean_us))),
            ("p50_us", Json::Num(self.p50_us as f64)),
            ("p95_us", Json::Num(self.p95_us as f64)),
            ("p99_us", Json::Num(self.p99_us as f64)),
            ("max_us", Json::Num(self.max_us as f64)),
            (
                "statuses",
                Json::Obj(
                    self.statuses
                        .iter()
                        .map(|(code, n)| (code.to_string(), Json::Num(*n as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Two-decimal rounding for human-facing derived numbers (raw latencies
/// stay exact integers).
pub fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles_on_known_distribution() {
        // 1..=1000 microseconds: nearest-rank pXX is exactly XX0.
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sorted, 0.50), 500);
        assert_eq!(percentile(&sorted, 0.95), 950);
        assert_eq!(percentile(&sorted, 0.99), 990);
        assert_eq!(percentile(&sorted, 1.0), 1000);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
        // Two samples: p50 is the first (rank ⌈0.5·2⌉ = 1), p99 the second.
        assert_eq!(percentile(&[3, 9], 0.50), 3);
        assert_eq!(percentile(&[3, 9], 0.99), 9);
        // Quantile above 1.0 clamps instead of overrunning.
        assert_eq!(percentile(&[3, 9], 1.5), 9);
    }

    #[test]
    fn per_route_groups_and_counts() {
        let records: Vec<RequestRecord> = (1..=100)
            .map(|i| RequestRecord {
                route: if i % 2 == 0 { "submit" } else { "diagnose" },
                status: if i == 4 { 429 } else { 200 },
                latency: Duration::from_micros(i),
            })
            .collect();
        let stats = per_route(&records);
        assert_eq!(stats.len(), 2);
        let submit = &stats["submit"];
        assert_eq!(submit.count, 50);
        assert_eq!(submit.max_us, 100);
        assert_eq!(submit.statuses[&429], 1);
        assert_eq!(submit.statuses[&200], 49);
        // Even latencies 2..=100: p50 = 50th value = 100·0.5 → rank 25 → 50.
        assert_eq!(submit.p50_us, 50);
        let diagnose = &stats["diagnose"];
        assert_eq!(diagnose.count, 50);
        assert_eq!(diagnose.p99_us, 99);
    }

    #[test]
    fn json_shape_is_stable() {
        let stats = per_route(&[RequestRecord {
            route: "submit",
            status: 200,
            latency: Duration::from_micros(120),
        }]);
        let j = stats["submit"].to_json(Duration::from_secs(2));
        assert_eq!(j.get("count").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("rps").and_then(Json::as_f64), Some(0.5));
        assert_eq!(j.get("p50_us").and_then(Json::as_f64), Some(120.0));
        assert!(j.get("statuses").is_some());
    }
}
