//! A minimal keep-alive HTTP/1.1 client over `std::net::TcpStream`.
//!
//! One client = one connection = one bench worker. The client transparently
//! reconnects once per request on a broken connection (servers may close on
//! protocol errors or during drain); a request that fails twice surfaces as
//! an `Err` the runner counts as a connection error.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Largest response body the client will buffer (the `/metrics` page and
/// batch responses are the big ones; 32 MiB is far above both).
const MAX_RESPONSE_BYTES: usize = 32 * 1024 * 1024;

/// A persistent connection to the serving edge.
pub struct HttpClient {
    addr: String,
    timeout: Duration,
    stream: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// Create a client for `addr` (`host:port`). Does not connect yet.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            timeout,
            stream: None,
        }
    }

    /// Connect, retrying until `deadline` — the server may still be
    /// binding when the bench (or CI smoke job) starts.
    pub fn connect_until(&mut self, deadline: Instant) -> std::io::Result<()> {
        loop {
            match self.ensure_connected() {
                Ok(()) => return Ok(()),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    fn ensure_connected(&mut self) -> std::io::Result<()> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(())
    }

    /// Issue one request; returns `(status, body)`. Reconnects and retries
    /// once on a transport error.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        match self.request_once(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.stream = None;
                self.request_once(method, path, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        self.ensure_connected()?;
        let Some(reader) = self.stream.as_mut() else {
            return Err(std::io::Error::other("not connected"));
        };
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: diagnet\r\nContent-Length: {}\r\n\
             Content-Type: application/json\r\nConnection: keep-alive\r\n\r\n",
            payload.len()
        );
        {
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(payload.as_bytes())?;
            stream.flush()?;
        }
        let result = read_response(reader);
        if result.is_err() {
            self.stream = None;
        } else if matches!(&result, Ok((_, _, close)) if *close) {
            self.stream = None;
        }
        result.map(|(status, body, _)| (status, body))
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String, bool)> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(std::io::Error::other("connection closed before response"));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {line:?}")))?;
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| std::io::Error::other("bad Content-Length"))?;
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                close = true;
            }
        }
    }
    if content_length > MAX_RESPONSE_BYTES {
        return Err(std::io::Error::other("response too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| std::io::Error::other("response body is not UTF-8"))?;
    Ok((status, body, close))
}
