//! Slowloris regression suite: a client trickling bytes slower than the
//! whole-request deadline must get `408` + connection close (not pin a
//! worker forever by resetting the per-`read(2)` socket timeout), an
//! idle keep-alive connection must expire *silently*, and one slow
//! client must not starve other clients of a single-worker server.
//!
//! These tests never reach the router, so the service behind the server
//! is deliberately untrained — cheap to build, irrelevant to the
//! protocol-level behaviour under test.

use diagnet_platform::service::{AnalysisService, ServiceConfig};
use diagnet_server::{AppState, Server, ServerConfig};
use diagnet_sim::world::World;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whole-request read budget for the servers in this suite.
const DEADLINE: Duration = Duration::from_millis(300);

/// Strictly faster than [`DEADLINE`]: each trickled byte would reset a
/// naive per-read socket timeout, which is exactly the attack.
const TRICKLE: Duration = Duration::from_millis(100);

fn slow_server() -> Server {
    let world = World::new();
    let state = AppState {
        service: Arc::new(AnalysisService::new(
            ServiceConfig::default(),
            world.schema.clone(),
        )),
        schema: world.schema,
        n_services: world.catalog.len(),
    };
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        read_timeout: DEADLINE,
        ..ServerConfig::default()
    };
    Server::start(config, state).expect("server binds an ephemeral port")
}

/// Read until the server closes the connection; return everything seen.
fn read_to_close(stream: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return buf,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::TimedOut || e.kind() == ErrorKind::WouldBlock => {
                panic!("server neither answered nor closed; got {buf:?}")
            }
            // The server may RST after close; whatever arrived is the answer.
            Err(_) => return buf,
        }
    }
}

/// A body trickled one byte per [`TRICKLE`] must be cut off by the
/// whole-request deadline with `408` and a closed connection, even
/// though no single socket read ever waits longer than the trickle gap.
#[test]
fn trickled_body_is_rejected_with_408_and_close() {
    let server = slow_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    stream
        .write_all(
            b"POST /v1/diagnose HTTP/1.1\r\nHost: test\r\n\
              Content-Length: 64\r\n\r\n",
        )
        .expect("head writes");

    // Keep the trickle alive from a second thread while the main thread
    // waits for the server's verdict; writes after the server closes are
    // expected to fail and are ignored.
    let trickler = {
        let mut stream = stream.try_clone().expect("clone stream");
        std::thread::spawn(move || {
            for _ in 0..12 {
                std::thread::sleep(TRICKLE);
                if stream.write_all(b"x").is_err() {
                    return;
                }
            }
        })
    };

    let started = Instant::now();
    let answer = String::from_utf8_lossy(&read_to_close(&mut stream)).to_string();
    trickler.join().expect("trickler joins");

    assert!(
        answer.starts_with("HTTP/1.1 408 "),
        "expected a 408 head, got {answer:?}"
    );
    assert!(answer.contains("request_timeout"), "{answer:?}");
    assert!(
        answer.contains("Connection: close"),
        "a timed-out request must not keep the connection alive: {answer:?}"
    );
    assert!(
        started.elapsed() < DEADLINE * 10,
        "the deadline must bound the whole request, not reset per read \
         (took {:?})",
        started.elapsed()
    );
}

/// Trickled *headers* are the classic slowloris shape; the same deadline
/// covers them.
#[test]
fn trickled_headers_are_rejected_with_408() {
    let server = slow_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    stream
        .write_all(b"GET /healthz HTT")
        .expect("partial head writes");
    let answer = String::from_utf8_lossy(&read_to_close(&mut stream)).to_string();
    assert!(
        answer.starts_with("HTTP/1.1 408 "),
        "expected a 408 head, got {answer:?}"
    );
}

/// An idle keep-alive connection that never starts a request is closed
/// silently when its deadline passes — no 408 bytes for a client that
/// asked nothing.
#[test]
fn idle_keepalive_connection_expires_silently() {
    let server = slow_server();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    let answer = read_to_close(&mut stream);
    assert!(
        answer.is_empty(),
        "idle expiry must close without writing, got {:?}",
        String::from_utf8_lossy(&answer)
    );
}

/// With a single worker, a slow client must release it at the deadline:
/// a well-behaved request queued behind the attack still gets answered.
#[test]
fn slow_client_does_not_starve_the_worker() {
    let server = slow_server();
    let addr = server.local_addr();

    // Occupy the only worker with a stalled request.
    let mut slow = TcpStream::connect(addr).expect("slow connect");
    slow.write_all(b"POST /v1/diagnose HTTP/1.1\r\nHost: test\r\nContent-Length: 64\r\n\r\n")
        .expect("slow head writes");

    // The healthy client queues behind it and must be served once the
    // deadline frees the worker.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("healthz writes");
    let started = Instant::now();
    let answer = String::from_utf8_lossy(&read_to_close(&mut stream)).to_string();
    assert!(
        answer.starts_with("HTTP/1.1 "),
        "queued client never got an answer: {answer:?}"
    );
    assert!(
        started.elapsed() < DEADLINE * 20,
        "the slow client held the worker far past its deadline ({:?})",
        started.elapsed()
    );
    drop(slow);
}
