//! End-to-end tests over real TCP sockets: every status code in the
//! `SERVING.md` contract, bit-identical diagnosis parity with the
//! in-process API, backpressure (shed → 429), health (degraded → 503),
//! protocol errors, keep-alive and graceful shutdown.
//!
//! The client below is deliberately minimal and independent of
//! `diagnet-bencher`, so a bug cannot hide on both sides of the wire.

use diagnet::backend::BackendKind;
use diagnet::config::DiagNetConfig;
use diagnet_platform::health::HealthState;
use diagnet_platform::service::{AnalysisService, ServiceConfig};
use diagnet_platform::supervisor::SupervisionConfig;
use diagnet_server::{AppState, Json, Server, ServerConfig};
use diagnet_sim::dataset::{Dataset, DatasetConfig, Sample};
use diagnet_sim::world::World;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Seconds-not-minutes model hyper-parameters for the test server.
fn smoke_config() -> DiagNetConfig {
    let mut c = DiagNetConfig::fast();
    c.epochs = 2;
    c.forest.n_trees = 5;
    c
}

fn service_config(world: &World) -> ServiceConfig {
    ServiceConfig {
        backend: BackendKind::DiagNet,
        model: smoke_config(),
        general_services: world.catalog.all_ids(),
        min_service_samples: usize::MAX,
        seed: 11,
        ..ServiceConfig::default()
    }
}

/// A trained service plus the samples it was trained on.
fn trained_state() -> (AppState, Vec<Sample>) {
    let world = World::new();
    let dataset = Dataset::generate(&world, &DatasetConfig::standard(&world, 2, 7))
        .expect("dataset generates");
    let service = Arc::new(AnalysisService::new(
        service_config(&world),
        world.schema.clone(),
    ));
    for sample in dataset.samples.iter().cloned() {
        service.submit(sample);
    }
    service.retrain_now().expect("bootstrap training succeeds");
    let state = AppState {
        service,
        schema: world.schema,
        n_services: world.catalog.len(),
    };
    (state, dataset.samples)
}

/// One shared trained server for the read-mostly tests. Kept alive (and
/// its threads with it) for the whole test process.
fn shared() -> &'static (Server, AppState, Vec<Sample>) {
    static SHARED: OnceLock<(Server, AppState, Vec<Sample>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let (state, samples) = trained_state();
        let server = start_server(state.clone(), ServerConfig::default());
        (server, state, samples)
    })
}

fn start_server(state: AppState, mut config: ServerConfig) -> Server {
    config.addr = "127.0.0.1:0".to_string();
    Server::start(config, state).expect("server binds an ephemeral port")
}

/// Send one request on a fresh connection (`Connection: close`) and
/// return `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    write_request(&mut stream, method, path, body, true);
    read_response(&mut stream)
}

fn write_request(stream: &mut TcpStream, method: &str, path: &str, body: &str, close: bool) {
    let connection = if close { "close" } else { "keep-alive" };
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: {connection}\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("request writes");
}

/// Parse a response off the stream using its `Content-Length`.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("response read");
        assert!(n > 0, "connection closed before response head completed");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("response carries Content-Length");
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("body read");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn features_json(features: &[f32]) -> Json {
    Json::Arr(features.iter().map(|&v| Json::from_f32(v)).collect())
}

fn diagnose_body(sample: &Sample) -> String {
    Json::obj(vec![
        ("features", features_json(&sample.features)),
        ("service", Json::Num(sample.service.0 as f64)),
    ])
    .render()
}

/// Scores travelling the wire as JSON must come back bit-for-bit equal to
/// what the in-process API returns for the same probe.
#[test]
fn diagnose_over_tcp_is_bit_identical_to_in_process() {
    let (server, state, samples) = shared();
    for sample in samples.iter().step_by(37).take(5) {
        let (status, body) = request(
            server.local_addr(),
            "POST",
            "/v1/diagnose",
            &diagnose_body(sample),
        );
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).expect("response parses");
        let expected = state
            .service
            .diagnose(&sample.features, sample.service, &state.schema)
            .expect("in-process diagnose succeeds");

        let wire_scores: Vec<u32> = doc
            .get("scores")
            .and_then(Json::as_arr)
            .expect("scores array")
            .iter()
            .map(|v| (v.as_f64().expect("score is a number") as f32).to_bits())
            .collect();
        let local_scores: Vec<u32> = expected
            .ranking
            .scores
            .iter()
            .map(|s| s.to_bits())
            .collect();
        assert_eq!(wire_scores, local_scores, "per-cause scores drifted");

        let wire_unknown = doc
            .get("w_unknown")
            .and_then(Json::as_f64)
            .expect("w_unknown");
        assert_eq!(
            (wire_unknown as f32).to_bits(),
            expected.ranking.w_unknown.to_bits()
        );
        assert_eq!(
            doc.get("top_cause")
                .and_then(Json::as_str)
                .expect("top_cause"),
            expected.top_cause.name()
        );
        assert_eq!(
            doc.get("model_version")
                .and_then(Json::as_usize)
                .expect("version") as u64,
            expected.model_version
        );
    }
}

/// A batch response must agree row-for-row with the single-probe route.
#[test]
fn batch_diagnose_matches_single_probe_responses() {
    let (server, _state, samples) = shared();
    let rows: Vec<&Sample> = samples.iter().take(3).collect();
    let service_id = rows[0].service.0;
    let batch = Json::obj(vec![
        ("service", Json::Num(service_id as f64)),
        (
            "probes",
            Json::Arr(rows.iter().map(|s| features_json(&s.features)).collect()),
        ),
    ])
    .render();
    let (status, body) = request(server.local_addr(), "POST", "/v1/diagnose", &batch);
    assert_eq!(status, 200, "{body}");
    let results = Json::parse(&body)
        .expect("batch response parses")
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array")
        .to_vec();
    assert_eq!(results.len(), rows.len());

    for (row, batched) in rows.iter().zip(&results) {
        let single_body = Json::obj(vec![
            ("features", features_json(&row.features)),
            ("service", Json::Num(service_id as f64)),
        ])
        .render();
        let (status, single) = request(server.local_addr(), "POST", "/v1/diagnose", &single_body);
        assert_eq!(status, 200);
        assert_eq!(
            batched.render(),
            Json::parse(&single).expect("single parses").render(),
            "batch row must be byte-identical to the single-probe response"
        );
    }
}

#[test]
fn submit_accepts_valid_and_rejects_corrupt_probes() {
    let (server, state, samples) = shared();
    let sample = &samples[0];
    let body = Json::obj(vec![
        ("features", features_json(&sample.features)),
        ("service", Json::Num(sample.service.0 as f64)),
        ("plt_s", Json::from_f32(sample.plt_s)),
    ])
    .render();
    let (status, resp) = request(server.local_addr(), "POST", "/v1/submit", &body);
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("accepted"), "{resp}");

    // Absurd magnitude: admission rejects, client is told why.
    let mut corrupt = sample.features.clone();
    corrupt[0] = 1.0e12;
    let body = Json::obj(vec![
        ("features", features_json(&corrupt)),
        ("service", Json::Num(sample.service.0 as f64)),
    ])
    .render();
    let (status, resp) = request(server.local_addr(), "POST", "/v1/submit", &body);
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("rejected"), "{resp}");
    assert!(resp.contains("magnitude"), "{resp}");

    // Same corrupt probe on the diagnose gate.
    let (status, resp) = request(server.local_addr(), "POST", "/v1/diagnose", &body);
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("invalid_probe"), "{resp}");
    let _ = state;
}

#[test]
fn malformed_bodies_and_bad_fields_are_400() {
    let (server, ..) = shared();
    let addr = server.local_addr();
    for bad in [
        "{oops",
        "null",
        r#"{"features": "nope", "service": 0}"#,
        r#"{"features": [0.1], "service": 99999}"#,
        r#"{"features": [0.1], "service": -1}"#,
    ] {
        let (status, resp) = request(addr, "POST", "/v1/submit", bad);
        assert_eq!(status, 400, "body {bad:?} gave {resp}");
    }
}

#[test]
fn healthz_reports_serving_no_model_and_degraded() {
    // Shared trained server: serving.
    let (server, ..) = shared();
    let (status, body) = request(server.local_addr(), "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("healthz parses");
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("serving"));
    assert_eq!(doc.get("ready").and_then(Json::as_bool), Some(true));

    // Fresh, never-trained service: 503 no_model (load balancers drop it).
    let world = World::new();
    let cold = AppState {
        service: Arc::new(AnalysisService::new(
            service_config(&world),
            world.schema.clone(),
        )),
        schema: world.schema.clone(),
        n_services: world.catalog.len(),
    };
    let cold_server = start_server(cold, ServerConfig::default());
    let (status, body) = request(cold_server.local_addr(), "GET", "/healthz", "");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("no_model"), "{body}");

    // Degraded: a service whose supervision budget guarantees retrain
    // failure, seeded with the shared server's trained model. The
    // last-good generation keeps serving, health says degraded.
    let mut degraded_config = service_config(&world);
    degraded_config.supervision = SupervisionConfig {
        max_attempts: 1,
        budget: Some(Duration::ZERO),
        ..SupervisionConfig::default()
    };
    let degraded = AppState {
        service: Arc::new(AnalysisService::new(degraded_config, world.schema.clone())),
        schema: world.schema,
        n_services: world.catalog.len(),
    };
    let trained = shared()
        .1
        .service
        .registry()
        .general()
        .expect("shared server has a general model");
    degraded
        .service
        .publish_external(trained)
        .expect("publish succeeds");
    assert!(
        degraded.service.retrain_now().is_err(),
        "zero budget must fail"
    );
    assert!(matches!(
        degraded.service.health(),
        HealthState::Degraded { .. }
    ));

    let degraded_server = start_server(degraded, ServerConfig::default());
    let (status, body) = request(degraded_server.local_addr(), "GET", "/healthz", "");
    assert_eq!(status, 503, "{body}");
    let doc = Json::parse(&body).expect("healthz parses");
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("degraded"));
    // Degraded still diagnoses: the request path stays up.
    assert_eq!(doc.get("ready").and_then(Json::as_bool), Some(true));
}

/// Valid probes hitting a full submission queue are shed with 429, and
/// the shed shows up on the metrics page.
#[test]
fn full_submission_queue_sheds_with_429() {
    let world = World::new();
    let mut config = service_config(&world);
    config.admission.max_pending = 1;
    let state = AppState {
        service: Arc::new(AnalysisService::new(config, world.schema.clone())),
        schema: world.schema.clone(),
        n_services: world.catalog.len(),
    };
    // Paused intake: submissions stay queued, so the second one overflows.
    state.service.set_intake_paused(true);
    let server = start_server(state, ServerConfig::default());
    let body = Json::obj(vec![
        (
            "features",
            Json::Arr(vec![Json::Num(0.25); world.schema.n_features()]),
        ),
        ("service", Json::Num(0.0)),
    ])
    .render();

    let (status, resp) = request(server.local_addr(), "POST", "/v1/submit", &body);
    assert_eq!(status, 200, "first submit queues: {resp}");
    let (status, resp) = request(server.local_addr(), "POST", "/v1/submit", &body);
    assert_eq!(status, 429, "second submit sheds: {resp}");
    assert!(resp.contains("shed"), "{resp}");

    let (status, metrics) = request(server.local_addr(), "GET", "/metrics", "");
    assert_eq!(status, 200);
    let shed_line = metrics
        .lines()
        .find(|l| l.contains("diagnet_http_requests_total") && l.contains("429"))
        .unwrap_or_else(|| panic!("no 429 series on the metrics page:\n{metrics}"));
    assert!(shed_line.contains(r#"route="/v1/submit""#), "{shed_line}");
}

#[test]
fn unknown_routes_and_methods_are_404_and_405() {
    let (server, ..) = shared();
    let addr = server.local_addr();
    let (status, body) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404, "{body}");
    let (status, body) = request(addr, "DELETE", "/healthz", "");
    assert_eq!(status, 405, "{body}");
    let (status, body) = request(addr, "GET", "/v1/diagnose", "");
    assert_eq!(status, 405, "{body}");
}

#[test]
fn oversized_and_lengthless_bodies_are_413_and_411() {
    let (state, _) = trained_state();
    let server = start_server(
        state,
        ServerConfig {
            max_body_bytes: 64,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let big = "x".repeat(1024);
    let (status, body) = request(addr, "POST", "/v1/submit", &big);
    assert_eq!(status, 413, "{body}");

    // POST with no Content-Length at all.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /v1/submit HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("writes");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 411, "{body}");
}

/// The metrics page is valid Prometheus text: HELP/TYPE comments plus
/// `name{labels} value` samples, including the http request series.
#[test]
fn metrics_page_parses_as_prometheus_text() {
    let (server, ..) = shared();
    // Generate at least one request so the series exist.
    let _ = request(server.local_addr(), "GET", "/healthz", "");
    let (status, text) = request(server.local_addr(), "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("diagnet_http_requests_total"), "{text}");
    assert!(
        text.contains("diagnet_http_request_duration_seconds"),
        "{text}"
    );
    assert!(text.contains("diagnet_http_connections_total"), "{text}");
    for line in text.lines().filter(|l| !l.is_empty()) {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP") || line.starts_with("# TYPE"),
                "unexpected comment: {line}"
            );
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line has no value: {line}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "value is not a number: {line}"
        );
        let name = series.split('{').next().unwrap_or(series);
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name: {line}"
        );
    }
}

/// Two requests over one connection: HTTP/1.1 keep-alive works.
#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let (server, ..) = shared();
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write_request(&mut stream, "GET", "/healthz", "", false);
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    write_request(&mut stream, "GET", "/healthz", "", true);
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 200, "second request on the same socket");
}

/// Shutdown drains: in-flight work finishes, then the port goes dark.
#[test]
fn graceful_shutdown_stops_accepting() {
    let (state, _) = trained_state();
    let mut server = start_server(state, ServerConfig::default());
    let addr = server.local_addr();
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    server.shutdown();
    // The listener is closed; a new connection must fail (or be reset
    // before a response arrives).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = Vec::new();
            let n = stream.read_to_end(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "a drained server must not answer: {buf:?}");
        }
    }
}
