//! Docs-freshness check: the routes documented in `SERVING.md` must match
//! the router's route table exactly, in both directions. A route added to
//! the code without a docs update (or vice versa) fails CI here.

use diagnet_server::router::ROUTES;
use std::collections::BTreeSet;
use std::path::Path;

const METHODS: &[&str] = &["GET", "HEAD", "POST", "PUT", "PATCH", "DELETE"];

/// Every backticked `METHOD /path` occurrence in the guide.
fn documented_routes(text: &str) -> BTreeSet<(String, String)> {
    let mut out = BTreeSet::new();
    for chunk in text.split('`').skip(1).step_by(2) {
        let mut words = chunk.split_whitespace();
        let (Some(method), Some(path), None) = (words.next(), words.next(), words.next()) else {
            continue;
        };
        if METHODS.contains(&method) && path.starts_with('/') {
            out.insert((method.to_string(), path.to_string()));
        }
    }
    out
}

#[test]
fn serving_md_documents_exactly_the_served_routes() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../SERVING.md");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("SERVING.md must exist at {}: {e}", path.display()));
    let documented = documented_routes(&text);
    let served: BTreeSet<(String, String)> = ROUTES
        .iter()
        .map(|(m, p)| (m.to_string(), p.to_string()))
        .collect();

    let undocumented: Vec<_> = served.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "routes served but not documented in SERVING.md (add a backticked \
         `METHOD /path`): {undocumented:?}"
    );
    let stale: Vec<_> = documented.difference(&served).collect();
    assert!(
        stale.is_empty(),
        "routes documented in SERVING.md but not served (remove or fix): {stale:?}"
    );
}

#[test]
fn route_extraction_parses_backticked_method_path_pairs() {
    let text = "Call `POST /v1/diagnose` or `GET /healthz`; `not a route`, \
                `POST` alone, and `GET /x y` are ignored.";
    let routes = documented_routes(text);
    assert_eq!(routes.len(), 2);
    assert!(routes.contains(&("POST".to_string(), "/v1/diagnose".to_string())));
    assert!(routes.contains(&("GET".to_string(), "/healthz".to_string())));
}
