//! # diagnet-server — the HTTP serving edge
//!
//! DIAGNET's pitch is *Internet-scale* root-cause analysis (abstract,
//! §III-A): measurements stream in from clients, and diagnosis is
//! "provided to clients as an online analysis service". Until this crate,
//! the repo's [`AnalysisService`](diagnet_platform::service::AnalysisService)
//! was in-process only; here it gets a socket in front of it.
//!
//! The edge is deliberately dependency-free: `std::net::TcpListener`, a
//! hand-rolled HTTP/1.1 subset ([`http`]), a hand-rolled JSON tree
//! ([`json`]), a fixed worker pool with a bounded accept queue
//! ([`server`]), and a four-route table ([`router`]):
//!
//! | route               | purpose                                    |
//! |---------------------|--------------------------------------------|
//! | `POST /v1/submit`   | feed one observation through admission     |
//! | `POST /v1/diagnose` | rank causes for one probe or a batch       |
//! | `GET /healthz`      | `HealthState` → 200 (Serving) / 503        |
//! | `GET /metrics`      | Prometheus exposition text                 |
//!
//! Backpressure is end-to-end: a full connection queue answers 503 at
//! accept time, a full submission queue answers 429 per request, and
//! admission rejects answer 400 — each visible both to the client and in
//! the `diagnet_http_*` metrics (`OBSERVABILITY.md`). Operator guide:
//! `SERVING.md`; design notes: `DESIGN.md` §13.
//!
//! Every non-test line of this crate is inside `diagnet-lint`'s
//! panic-rule scope: the serving edge must never take down the process on
//! hostile input.

pub mod api;
pub mod http;
pub mod json;
pub mod router;
pub mod server;

pub use api::AppState;
pub use json::{Json, JsonError};
pub use server::{Server, ServerConfig};
