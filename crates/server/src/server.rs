//! The TCP serving edge: accept loop, bounded connection queue, fixed
//! worker pool, graceful drain.
//!
//! Threading model (documented in `DESIGN.md` §13): one accept thread
//! pulls connections off the listener and pushes them into a bounded
//! queue; `workers` threads pop connections and run keep-alive
//! request/response loops. When the queue is full the accept thread
//! answers `503` inline and drops the connection — backpressure reaches
//! the client instead of growing an unbounded backlog. Per-connection
//! read/write timeouts bound how long a slow client can pin a worker.

use crate::api::AppState;
use crate::http::{read_request, ReadError, Response};
use crate::router;
use diagnet_obs::global;
use std::collections::VecDeque;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connections accepted into the queue vs rejected at the door, by
/// `outcome` label (`accepted` / `rejected`).
pub const HTTP_CONNECTIONS_TOTAL: &str = "diagnet_http_connections_total";

/// Connections currently being served by a worker.
pub const HTTP_CONNECTIONS_ACTIVE: &str = "diagnet_http_connections_active";

/// Serving-edge knobs. `Default` matches the CLI defaults documented in
/// `SERVING.md`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads running connection loops.
    pub workers: usize,
    /// Bounded accepted-connection queue; overflow is answered 503.
    pub backlog: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 4,
            backlog: 128,
            read_timeout: Duration::from_millis(5000),
            write_timeout: Duration::from_millis(5000),
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

struct QueueInner {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

/// Bounded MPMC handoff between the accept thread and the workers.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

/// A poisoned lock only means another thread panicked mid-operation; the
/// queue of owned sockets is still structurally valid, so serving
/// continues on the recovered guard.
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue, or hand the stream back when full/closed.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = recover(self.inner.lock());
        if inner.closed || inner.conns.len() >= self.capacity {
            return Err(stream);
        }
        inner.conns.push_back(stream);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a connection is available; `None` once closed and
    /// drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = recover(self.inner.lock());
        loop {
            if let Some(conn) = inner.conns.pop_front() {
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = recover(self.ready.wait(inner));
        }
    }

    fn close(&self) {
        recover(self.inner.lock()).closed = true;
        self.ready.notify_all();
    }
}

/// A running serving edge. Dropping it (or calling [`Server::shutdown`])
/// drains and joins every thread.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept thread and the worker pool, return
    /// immediately.
    pub fn start(config: ServerConfig, state: AppState) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(config.backlog));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let state = state.clone();
            let config = config.clone();
            let shutdown = Arc::clone(&shutdown);
            let handle = std::thread::Builder::new()
                .name(format!("diagnet-http-{i}"))
                .spawn(move || {
                    while let Some(conn) = queue.pop() {
                        serve_connection(conn, &state, &config, &shutdown);
                    }
                })
                .map_err(|e| std::io::Error::other(format!("spawning worker: {e}")))?;
            workers.push(handle);
        }

        let accept_thread = {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            std::thread::Builder::new()
                .name("diagnet-accept".to_string())
                .spawn(move || accept_loop(&listener, &queue, &config, &shutdown))
                .map_err(|e| std::io::Error::other(format!("spawning acceptor: {e}")))?
        };

        Ok(Server {
            local_addr,
            shutdown,
            queue,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful drain: stop accepting, finish queued and in-flight
    /// connections, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept thread is parked in `accept()`; a throwaway local
        // connection wakes it so it can observe the flag and exit.
        if let Ok(conn) = TcpStream::connect(self.local_addr) {
            drop(conn);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn conn_counter(outcome: &str) -> diagnet_obs::Counter {
    global().counter(
        HTTP_CONNECTIONS_TOTAL,
        &[("outcome", outcome)],
        "Connections accepted into the worker queue vs rejected at the door.",
    )
}

fn accept_loop(
    listener: &TcpListener,
    queue: &ConnQueue,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            // Transient accept errors (EMFILE, ECONNABORTED): back off
            // briefly instead of spinning.
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        let _ = stream.set_nodelay(true);
        match queue.push(stream) {
            Ok(()) => conn_counter("accepted").inc(),
            Err(stream) => {
                conn_counter("rejected").inc();
                reject_overloaded(stream);
            }
        }
    }
}

/// Queue full: tell the client so (503 + Retry-After) and hang up.
fn reject_overloaded(mut stream: TcpStream) {
    let started = Instant::now();
    let body = r#"{"error":"overloaded"}"#;
    let _ = stream.write_all(
        format!(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    router::record("connection_rejected", 503, started);
}

/// Enforces a **whole-request** read deadline over a TCP stream.
///
/// The raw socket timeout set by the accept loop is per-`read(2)` call: a
/// client trickling one byte per interval resets the clock every syscall
/// and can pin a worker forever (slowloris). This wrapper arms a deadline
/// when a request starts and narrows the socket timeout to the remaining
/// budget before every read, so the total wall time a request may spend
/// being read is bounded regardless of how the bytes arrive.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    /// Total read budget per request.
    budget: Duration,
    /// Absolute cut-off for the request currently being read.
    deadline: Instant,
    /// Bytes consumed since the last [`DeadlineStream::arm`]; zero at a
    /// timeout means the connection was idle (no request in flight).
    bytes: u64,
}

impl<'a> DeadlineStream<'a> {
    fn new(stream: &'a TcpStream, budget: Duration) -> DeadlineStream<'a> {
        DeadlineStream {
            stream,
            budget,
            deadline: Instant::now() + budget,
            bytes: 0,
        }
    }

    /// Start the clock for the next request.
    fn arm(&mut self) {
        self.deadline = Instant::now() + self.budget;
        self.bytes = 0;
    }

    fn started_request(&self) -> bool {
        self.bytes > 0
    }
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ));
        }
        // `set_read_timeout` rejects zero; `remaining` is non-zero here.
        let _ = self.stream.set_read_timeout(Some(remaining));
        let n = (&mut self.stream).read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

/// One keep-alive connection: read requests until the client closes, an
/// error occurs, or shutdown begins (then the next response carries
/// `Connection: close`).
fn serve_connection(
    stream: TcpStream,
    state: &AppState,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let active = global().gauge(
        HTTP_CONNECTIONS_ACTIVE,
        &[],
        "Connections currently held by a worker.",
    );
    active.add(1.0);
    let mut reader = BufReader::new(DeadlineStream::new(&stream, config.read_timeout));
    loop {
        reader.get_mut().arm();
        let started = Instant::now();
        let outcome = match read_request(&mut reader, config.max_body_bytes) {
            Ok(req) => {
                let mut resp = router::dispatch(state, &req);
                resp.close = resp.close || req.close || shutdown.load(Ordering::SeqCst);
                Some(resp)
            }
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => None,
            // Deadline hit mid-request → tell the client (408) and hang
            // up; expired while idle between requests → close silently.
            Err(ReadError::TimedOut) => reader.get_ref().started_request().then(|| {
                protocol_error(
                    408,
                    "request_timeout",
                    "request not completed before the read deadline",
                    started,
                )
            }),
            Err(ReadError::Malformed(msg)) => {
                Some(protocol_error(400, "malformed_request", msg, started))
            }
            Err(ReadError::LengthRequired) => Some(protocol_error(
                411,
                "length_required",
                "POST requires Content-Length",
                started,
            )),
            Err(ReadError::TooLarge) => Some(protocol_error(
                413,
                "payload_too_large",
                "request body exceeds the configured limit",
                started,
            )),
        };
        match outcome {
            None => break,
            Some(resp) => {
                if resp.write_to(&mut (&stream)).is_err() || resp.close {
                    break;
                }
            }
        }
    }
    active.add(-1.0);
}

/// A protocol-level failure (before routing): respond, count it under a
/// synthetic route bucket, and close the connection.
fn protocol_error(status: u16, error: &str, detail: &str, started: Instant) -> Response {
    router::record("protocol_error", status, started);
    let body = crate::json::Json::obj(vec![
        ("error", crate::json::Json::str(error)),
        ("detail", crate::json::Json::str(detail)),
    ]);
    let mut resp = Response::json(status, body.render());
    resp.close = true;
    resp
}
