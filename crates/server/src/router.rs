//! Route table and dispatch, with per-request HTTP metrics.
//!
//! [`ROUTES`] is the single source of truth for what the edge serves: the
//! docs-freshness test cross-checks `SERVING.md` against it in both
//! directions, so adding an endpoint here without documenting it (or vice
//! versa) fails the suite.

use crate::api::{self, AppState};
use crate::http::{Request, Response};
use diagnet_obs::global;
use std::time::Instant;

/// Requests by route and response status.
pub const HTTP_REQUESTS_TOTAL: &str = "diagnet_http_requests_total";

/// End-to-end handler latency by route (excludes socket read/write).
pub const HTTP_REQUEST_DURATION_SECONDS: &str = "diagnet_http_request_duration_seconds";

/// Every `(method, path)` pair the edge serves.
pub const ROUTES: &[(&str, &str)] = &[
    ("GET", "/healthz"),
    ("GET", "/metrics"),
    ("GET", "/v1/generations"),
    ("POST", "/v1/diagnose"),
    ("POST", "/v1/submit"),
];

/// Dispatch one parsed request, recording request metrics.
pub fn dispatch(state: &AppState, req: &Request) -> Response {
    let started = Instant::now();
    let (route, resp) = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/submit") => ("/v1/submit", api::handle_submit(state, &req.body)),
        ("POST", "/v1/diagnose") => ("/v1/diagnose", api::handle_diagnose(state, &req.body)),
        ("GET", "/healthz") => ("/healthz", api::handle_healthz(state)),
        ("GET", "/metrics") => ("/metrics", api::handle_metrics(state)),
        ("GET", "/v1/generations") => ("/v1/generations", api::handle_generations(state)),
        (_, path) if ROUTES.iter().any(|(_, p)| *p == path) => (
            "method_not_allowed",
            Response::json(405, r#"{"error":"method_not_allowed"}"#.to_string()),
        ),
        _ => (
            "not_found",
            Response::json(404, r#"{"error":"not_found"}"#.to_string()),
        ),
    };
    record(route, resp.status, started);
    resp
}

/// Count a request and time its handler. Public so the server loop can
/// also attribute protocol-level failures (400/411/413) to a route bucket.
pub fn record(route: &str, status: u16, started: Instant) {
    let status = status.to_string();
    global()
        .counter(
            HTTP_REQUESTS_TOTAL,
            &[("route", route), ("status", &status)],
            "HTTP requests served, by route and response status.",
        )
        .inc();
    global()
        .histogram(
            HTTP_REQUEST_DURATION_SECONDS,
            &[("route", route)],
            "Handler latency per HTTP route, seconds.",
        )
        .observe_since(started);
}
