//! Minimal HTTP/1.1 request reader and response writer.
//!
//! Only what the serving edge needs: request line + headers + an optional
//! `Content-Length` body, keep-alive semantics, and hard caps on header and
//! body sizes so a misbehaving client cannot balloon memory. Chunked
//! transfer encoding is deliberately unsupported (411 tells the client to
//! send a length); the bencher and any Prometheus scraper both speak plain
//! `Content-Length` requests.

use std::io::{BufRead, Write};

/// Cap on the request line plus all headers combined.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Method verb, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path with any `?query` stripped.
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this exchange.
    pub close: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadError {
    /// Clean EOF before any bytes: the peer closed an idle keep-alive
    /// connection. Not an error worth a response.
    Closed,
    /// Socket error mid-request.
    Io(String),
    /// The whole-request read deadline expired (slow or trickling client)
    /// → 408 when the request had started, silent close when idle.
    TimedOut,
    /// Request line / header syntax problems → 400.
    Malformed(&'static str),
    /// `POST` without a `Content-Length` → 411.
    LengthRequired,
    /// Declared body larger than the configured cap → 413.
    TooLarge,
}

/// Read one request from a buffered stream.
///
/// `max_body` bounds the accepted `Content-Length`. Returns
/// [`ReadError::Closed`] on immediate EOF so the keep-alive loop can exit
/// silently.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let start = read_line(stream, &mut head_bytes)?;
    if start.is_empty() {
        return Err(ReadError::Closed);
    }
    let mut parts = start.split_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Malformed("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(ReadError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported HTTP version"));
    }
    // HTTP/1.0 defaults to close, 1.1 to keep-alive.
    let mut close = version == "HTTP/1.0";
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header line without `:`"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "connection" {
            let v = value.to_ascii_lowercase();
            if v.contains("close") {
                close = true;
            } else if v.contains("keep-alive") {
                close = false;
            }
        }
        headers.push((name, value));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| ReadError::Malformed("unparseable Content-Length"))?;

    let body = match content_length {
        Some(n) if n > max_body => return Err(ReadError::TooLarge),
        Some(n) => {
            let mut buf = vec![0u8; n];
            std::io::Read::read_exact(stream, &mut buf).map_err(io_read_error)?;
            buf
        }
        None if method == "POST" || method == "PUT" => return Err(ReadError::LengthRequired),
        None => Vec::new(),
    };

    Ok(Request {
        method,
        path,
        headers,
        body,
        close,
    })
}

/// Classify a read failure: timeout-shaped errors (including `WouldBlock`,
/// which non-blocking-capable platforms report for an expired socket
/// timeout) become [`ReadError::TimedOut`] so the connection loop can
/// answer 408 instead of hanging up silently.
fn io_read_error(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ReadError::TimedOut,
        _ => ReadError::Io(e.to_string()),
    }
}

/// Read one CRLF-terminated line, enforcing the head-size cap.
fn read_line(stream: &mut impl BufRead, head_bytes: &mut usize) -> Result<String, ReadError> {
    let mut raw = Vec::new();
    let n = stream.read_until(b'\n', &mut raw).map_err(io_read_error)?;
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(ReadError::Malformed("request head too large"));
    }
    while matches!(raw.last(), Some(b'\n' | b'\r')) {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| ReadError::Malformed("non-UTF-8 in request head"))
}

/// A response ready to serialise.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether to close the connection after writing.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            body: body.into_bytes(),
            close: false,
        }
    }

    /// Serialise status line, headers and body to the stream.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let connection = if self.close { "close" } else { "keep-alive" };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            connection,
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Canonical reason phrase for the status codes the edge emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_with_headers_and_query() {
        let req = read("GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\nX-Ab: c d\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("x-ab"), Some("c d"));
        assert!(!req.close);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = read("POST /v1/submit HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").unwrap();
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn post_without_length_is_411() {
        assert_eq!(
            read("POST /v1/submit HTTP/1.1\r\n\r\n").unwrap_err(),
            ReadError::LengthRequired
        );
    }

    #[test]
    fn oversized_body_is_413() {
        let err = read("POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert_eq!(err, ReadError::TooLarge);
    }

    #[test]
    fn connection_semantics() {
        assert!(read("GET / HTTP/1.0\r\n\r\n").unwrap().close);
        assert!(
            !read("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .close
        );
        assert!(
            read("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .close
        );
    }

    #[test]
    fn eof_on_idle_connection_is_closed() {
        assert_eq!(read("").unwrap_err(), ReadError::Closed);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(matches!(
            read("GARBAGE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read("GET / SPDY/3\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        let huge = format!("GET / HTTP/1.1\r\nX: {}\r\n\r\n", "a".repeat(20_000));
        assert!(matches!(read(&huge), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn timeout_shaped_io_errors_become_timed_out() {
        struct Stall;
        impl std::io::Read for Stall {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "stall"))
            }
        }
        let err = read_request(&mut BufReader::new(Stall), 1024).unwrap_err();
        assert_eq!(err, ReadError::TimedOut);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
