//! Wire-format handlers: JSON bodies in, JSON bodies out.
//!
//! Each handler is a pure function from `(state, body)` to a
//! [`Response`]; the router owns dispatch and metrics, the server owns
//! sockets. Status-code contract (documented in `SERVING.md`, checked by
//! the end-to-end suite):
//!
//! | outcome                         | status |
//! |---------------------------------|--------|
//! | accepted / diagnosed            | 200    |
//! | malformed JSON or bad field     | 400    |
//! | probe rejected by admission     | 400    |
//! | queue full (submission shed)    | 429    |
//! | no model / degraded health      | 503    |
//! | non-finite scores withheld      | 500    |

use crate::http::Response;
use crate::json::Json;
use diagnet::integrity::render_checksum;
use diagnet_platform::admission::RejectReason;
use diagnet_platform::health::HealthState;
use diagnet_platform::rollout::RolloutPhase;
use diagnet_platform::service::{AnalysisService, DiagnoseError, Diagnosis, SubmitOutcome};
use diagnet_platform::store::GenerationRecord;
use diagnet_sim::dataset::Sample;
use diagnet_sim::metrics::{FeatureId, FeatureSchema};
use diagnet_sim::region::{Region, ALL_REGIONS};
use diagnet_sim::service::ServiceId;
use diagnet_sim::world::Label;
use std::sync::Arc;

/// Default number of ranked causes echoed in a diagnose response.
const DEFAULT_TOP_K: usize = 3;

/// Cap on probes per batch-diagnose request.
const MAX_BATCH: usize = 256;

/// Shared state handed to every handler.
#[derive(Clone)]
pub struct AppState {
    /// The analysis service every request routes through.
    pub service: Arc<AnalysisService>,
    /// Serving schema (feature order for scores and cause names).
    pub schema: FeatureSchema,
    /// Number of valid service ids (`0..n_services`).
    pub n_services: usize,
}

/// A typed JSON error body.
fn error_response(status: u16, error: &str, detail: Option<String>) -> Response {
    let mut pairs = vec![("error", Json::str(error))];
    if let Some(d) = detail {
        pairs.push(("detail", Json::str(d)));
    }
    Response::json(status, Json::obj(pairs).render())
}

/// 400 with a field-level explanation.
pub fn bad_request(detail: impl Into<String>) -> Response {
    error_response(400, "bad_request", Some(detail.into()))
}

fn parse_body(body: &[u8]) -> Result<Json, Response> {
    let text = std::str::from_utf8(body).map_err(|_| bad_request("body is not valid UTF-8"))?;
    Json::parse(text).map_err(|e| bad_request(e.to_string()))
}

fn parse_features(doc: &Json) -> Result<Vec<f32>, Response> {
    let arr = doc
        .get("features")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad_request("`features` must be an array of numbers"))?;
    let mut out = Vec::with_capacity(arr.len());
    for v in arr {
        match v.as_f64() {
            Some(x) => out.push(x as f32),
            None => return Err(bad_request("`features` must contain only numbers")),
        }
    }
    Ok(out)
}

fn parse_service(doc: &Json, n_services: usize) -> Result<ServiceId, Response> {
    let id = doc
        .get("service")
        .and_then(Json::as_usize)
        .ok_or_else(|| bad_request("`service` must be a non-negative integer"))?;
    if id >= n_services {
        return Err(bad_request(format!(
            "`service` {id} out of range (this deployment serves 0..{n_services})"
        )));
    }
    Ok(ServiceId(id))
}

fn parse_region(doc: &Json, key: &str) -> Result<Option<Region>, Response> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let code = v
                .as_str()
                .ok_or_else(|| bad_request(format!("`{key}` must be a region code string")))?;
            ALL_REGIONS
                .iter()
                .copied()
                .find(|r| r.code() == code)
                .map(Some)
                .ok_or_else(|| bad_request(format!("unknown region code `{code}`")))
        }
    }
}

/// `POST /v1/submit` — feed one labelled (or unlabelled) observation into
/// the training buffer through the admission gate.
pub fn handle_submit(state: &AppState, body: &[u8]) -> Response {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(resp) => return resp,
    };
    let sample = match sample_from_json(&doc, state) {
        Ok(sample) => sample,
        Err(resp) => return resp,
    };
    match state.service.submit(sample) {
        SubmitOutcome::Accepted => Response::json(
            200,
            Json::obj(vec![("status", Json::str("accepted"))]).render(),
        ),
        SubmitOutcome::Rejected(reason) => reject_response(reason),
        SubmitOutcome::Shed => error_response(
            429,
            "shed",
            Some("submission queue full; retry with backoff".to_string()),
        ),
    }
}

fn reject_response(reason: RejectReason) -> Response {
    // QueueFull arrives as `Shed` from submit; from the diagnose gate it
    // is still a client-side 400.
    let status = Json::obj(vec![
        ("error", Json::str("rejected")),
        ("reason", Json::str(reason.token())),
    ]);
    Response::json(400, status.render())
}

fn sample_from_json(doc: &Json, state: &AppState) -> Result<Sample, Response> {
    let features = parse_features(doc)?;
    let service = parse_service(doc, state.n_services)?;
    let client_region = parse_region(doc, "region")?.unwrap_or(Region::Beau);
    let plt_s = match doc.get("plt_s") {
        None | Some(Json::Null) => 0.0,
        Some(v) => v
            .as_f64()
            .ok_or_else(|| bad_request("`plt_s` must be a number"))? as f32,
    };
    let label = match doc.get("label") {
        None | Some(Json::Null) => Label::Nominal,
        Some(l) => {
            let idx = l
                .get("cause_index")
                .and_then(Json::as_usize)
                .ok_or_else(|| bad_request("`label.cause_index` must be a feature index"))?;
            if idx >= state.schema.n_features() {
                return Err(bad_request(format!(
                    "`label.cause_index` {idx} out of range for {}-feature schema",
                    state.schema.n_features()
                )));
            }
            let cause = state.schema.feature(idx);
            let region = match parse_region(l, "region")? {
                Some(r) => r,
                None => match cause {
                    FeatureId::Landmark(r, _) => r,
                    FeatureId::Local(_) => client_region,
                },
            };
            Label::Faulty {
                cause,
                family: cause.family(),
                region,
            }
        }
    };
    Ok(Sample {
        features,
        label,
        service,
        client_region,
        plt_s,
        faults: Vec::new(),
    })
}

/// `POST /v1/diagnose` — rank root causes for one probe, or for a batch
/// when the body carries `probes` instead of `features`.
pub fn handle_diagnose(state: &AppState, body: &[u8]) -> Response {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(resp) => return resp,
    };
    if doc.get("probes").is_some() {
        return handle_diagnose_batch(state, &doc);
    }
    let features = match parse_features(&doc) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    let service = match parse_service(&doc, state.n_services) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let top_k = doc
        .get("top")
        .and_then(Json::as_usize)
        .unwrap_or(DEFAULT_TOP_K);
    match state.service.diagnose(&features, service, &state.schema) {
        Ok(d) => Response::json(200, diagnosis_json(&d, &state.schema, top_k).render()),
        Err(e) => diagnose_error_response(&e),
    }
}

fn handle_diagnose_batch(state: &AppState, doc: &Json) -> Response {
    let service = match parse_service(doc, state.n_services) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let rows = match doc.get("probes").and_then(Json::as_arr) {
        Some(rows) => rows,
        None => return bad_request("`probes` must be an array of feature arrays"),
    };
    if rows.len() > MAX_BATCH {
        return bad_request(format!(
            "batch of {} probes exceeds the {MAX_BATCH}-probe cap",
            rows.len()
        ));
    }
    let top_k = doc
        .get("top")
        .and_then(Json::as_usize)
        .unwrap_or(DEFAULT_TOP_K);
    let mut probes = Vec::with_capacity(rows.len());
    for row in rows {
        let arr = match row.as_arr() {
            Some(arr) => arr,
            None => return bad_request("`probes` must contain only arrays"),
        };
        let mut features = Vec::with_capacity(arr.len());
        for v in arr {
            match v.as_f64() {
                Some(x) => features.push(x as f32),
                None => return bad_request("probe rows must contain only numbers"),
            }
        }
        probes.push(features);
    }
    match state
        .service
        .diagnose_batch(&probes, service, &state.schema)
    {
        Err(e) => diagnose_error_response(&e),
        Ok(results) => {
            let items = results
                .iter()
                .map(|r| match r {
                    Ok(d) => diagnosis_json(d, &state.schema, top_k),
                    Err(e) => diagnose_error_json(e),
                })
                .collect();
            Response::json(200, Json::obj(vec![("results", Json::Arr(items))]).render())
        }
    }
}

fn diagnosis_json(d: &Diagnosis, schema: &FeatureSchema, top_k: usize) -> Json {
    let top = d
        .ranking
        .top(top_k)
        .into_iter()
        .filter_map(|idx| {
            let score = d.ranking.scores.get(idx).copied()?;
            (idx < schema.n_features()).then(|| {
                Json::obj(vec![
                    ("feature", Json::str(schema.feature(idx).name())),
                    ("index", Json::Num(idx as f64)),
                    ("score", Json::from_f32(score)),
                ])
            })
        })
        .collect();
    Json::obj(vec![
        ("model_version", Json::Num(d.model_version as f64)),
        ("top_cause", Json::str(d.top_cause.name())),
        ("w_unknown", Json::from_f32(d.ranking.w_unknown)),
        ("top", Json::Arr(top)),
        (
            "scores",
            Json::Arr(
                d.ranking
                    .scores
                    .iter()
                    .map(|&s| Json::from_f32(s))
                    .collect(),
            ),
        ),
        (
            "coarse",
            Json::Arr(
                d.ranking
                    .coarse
                    .iter()
                    .map(|&s| Json::from_f32(s))
                    .collect(),
            ),
        ),
    ])
}

fn diagnose_error_json(e: &DiagnoseError) -> Json {
    match e {
        DiagnoseError::NoModel => Json::obj(vec![("error", Json::str("no_model"))]),
        DiagnoseError::InvalidProbe(reason) => Json::obj(vec![
            ("error", Json::str("invalid_probe")),
            ("reason", Json::str(reason.token())),
        ]),
        DiagnoseError::NonFiniteScores { model_version } => Json::obj(vec![
            ("error", Json::str("non_finite_scores")),
            ("model_version", Json::Num(*model_version as f64)),
        ]),
    }
}

fn diagnose_error_response(e: &DiagnoseError) -> Response {
    let status = match e {
        DiagnoseError::NoModel => 503,
        DiagnoseError::InvalidProbe(_) => 400,
        DiagnoseError::NonFiniteScores { .. } => 500,
    };
    Response::json(status, diagnose_error_json(e).render())
}

/// `GET /healthz` — `Serving` is 200; `NoModel` and `Degraded` are 503 so
/// load balancers stop routing to a replica that cannot answer.
pub fn handle_healthz(state: &AppState) -> Response {
    let health = state.service.health();
    let (status, token, reason) = match &health {
        HealthState::Serving => (200, "serving", None),
        HealthState::NoModel => (503, "no_model", None),
        HealthState::Degraded { reason } => (503, "degraded", Some(reason.clone())),
    };
    let mut pairs = vec![
        ("state", Json::str(token)),
        ("ready", Json::Bool(state.service.is_ready())),
        (
            "model_version",
            Json::Num(state.service.model_version() as f64),
        ),
        ("rollout", rollout_json(&state.service.rollout_phase())),
    ];
    if let Some(r) = reason {
        pairs.push(("reason", Json::str(r)));
    }
    Response::json(status, Json::obj(pairs).render())
}

fn rollout_json(phase: &RolloutPhase) -> Json {
    match phase {
        RolloutPhase::Idle => Json::obj(vec![("phase", Json::str("idle"))]),
        RolloutPhase::Canary {
            version,
            observed,
            window,
        } => Json::obj(vec![
            ("phase", Json::str("canary")),
            ("canary_version", Json::Num(*version as f64)),
            ("observed", Json::Num(*observed as f64)),
            ("window", Json::Num(*window as f64)),
        ]),
    }
}

fn generation_json(record: &GenerationRecord) -> Json {
    Json::obj(vec![
        ("generation", Json::Num(record.generation as f64)),
        (
            "parent",
            record
                .parent
                .map_or(Json::Null, |parent| Json::Num(parent as f64)),
        ),
        ("backend", Json::str(&record.backend)),
        ("checksum", Json::str(render_checksum(record.checksum))),
        ("bytes", Json::Num(record.bytes as f64)),
        ("status", Json::str(record.status.token())),
        ("file", Json::str(&record.file)),
    ])
}

/// `GET /v1/generations` — admin view of the generation lifecycle: the
/// live model version, rollout phase, and the durable store's manifest
/// (lineage, checksums, canary/active/rolled-back status per generation).
/// Served even when the store is absent (`generations` is then empty).
pub fn handle_generations(state: &AppState) -> Response {
    let records = state.service.generation_records();
    let body = Json::obj(vec![
        (
            "active_version",
            Json::Num(state.service.model_version() as f64),
        ),
        ("rollout", rollout_json(&state.service.rollout_phase())),
        (
            "recovered_generation",
            state
                .service
                .recovered_generation()
                .map_or(Json::Null, |r| Json::Num(r.generation as f64)),
        ),
        (
            "generations",
            Json::Arr(records.iter().map(generation_json).collect()),
        ),
    ]);
    Response::json(200, body.render())
}

/// `GET /metrics` — Prometheus exposition text.
pub fn handle_metrics(state: &AppState) -> Response {
    let text = state.service.metrics_snapshot().render_prometheus();
    Response::text(200, "text/plain; version=0.0.4", text)
}
