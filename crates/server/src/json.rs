//! A minimal, dependency-free JSON tree: parse and render.
//!
//! The serving edge speaks JSON on the wire but must not pull serde into
//! the workspace's dependency-free server path, so this module hand-rolls
//! the ~300 lines the API actually needs: a recursive-descent parser into
//! a [`Json`] value (objects kept as ordered `Vec<(String, Json)>` pairs —
//! no hashed collections on a serving path) and a compact renderer.
//!
//! Float fidelity matters here: diagnosis scores are `f32`s and the
//! round-trip over the wire must be bit-identical (the end-to-end suite
//! asserts it). [`Json::from_f32`] goes through Rust's shortest-roundtrip
//! decimal formatting, whose parse back through `f64` re-rounds to the
//! exact original `f32`.

use std::fmt;

/// Maximum nesting depth accepted by the parser (defence against
/// stack-exhausting `[[[[…` bodies).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (first write wins on `get`).
    Obj(Vec<(String, Json)>),
}

/// Why a body failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        match p.peek() {
            None => Ok(value),
            Some(_) => Err(p.err("trailing characters after the document")),
        }
    }

    /// A number from an `f32`, preserving bit-identity across a
    /// render → parse → `as f32` round trip (see module docs).
    pub fn from_f32(v: f32) -> Json {
        if v.is_finite() {
            // Shortest f32 decimal → nearest f64; casting that f64 back to
            // f32 recovers the original bits.
            Json::Num(format!("{v}").parse::<f64>().unwrap_or(f64::from(v)))
        } else {
            Json::Null
        }
    }

    /// An object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation (committed artefacts stay
    /// diff-friendly).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 is the shortest decimal that round-trips; integral
        // values print without a fraction ("3", not "3.0").
        let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
    } else {
        // JSON has no NaN/Inf; the API never emits them (non-finite scores
        // are typed errors upstream), so this is a belt-and-braces `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        let end = self.pos + word.len();
        if self.src.get(self.pos..end) == Some(word) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            // Fast path: copy a run of plain UTF-8 up to the next quote,
            // backslash or control byte.
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = self
                    .src
                    .get(start..self.pos)
                    .ok_or_else(|| self.err("string is not valid UTF-8"))?;
                out.push_str(run);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{0008}'),
            Some(b'f') => out.push('\u{000C}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let raw = self
            .src
            .get(start..self.pos)
            .ok_or_else(|| self.err("malformed number"))?;
        match raw.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err(format!("malformed number `{raw}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"a b\"").unwrap(), Json::Str("a b".into()));
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("d"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_usize(), Some(1));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"",
            "{\"a\"}",
            "{\"a\":1,}",
            "1 2",
            "nan",
            "1e999",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" back\\slash \n tab\t unicode \u{263A} nul-ish \u{0001}";
        let rendered = Json::Str(original.to_string()).render();
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
        // Explicit \u escapes, including a surrogate pair.
        let v = Json::parse(r#""\u0041\u263a\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{263A}\u{1F600}"));
    }

    #[test]
    fn f32_round_trip_is_bit_identical() {
        let cases = [
            0.1f32,
            -3.25,
            1e-30,
            3.4e38,
            f32::MIN_POSITIVE,
            0.0,
            -0.0,
            std::f32::consts::PI,
            1.0 / 3.0,
        ];
        for x in cases {
            let rendered = Json::from_f32(x).render();
            let parsed = Json::parse(&rendered).unwrap().as_f64().unwrap() as f32;
            assert_eq!(parsed.to_bits(), x.to_bits(), "{x} via `{rendered}`");
        }
        assert_eq!(Json::from_f32(f32::NAN), Json::Null);
    }

    #[test]
    fn render_is_parseable_and_ordered() {
        let v = Json::obj(vec![
            ("b", Json::Num(2.0)),
            ("a", Json::Arr(vec![Json::Bool(false), Json::Null])),
        ]);
        let compact = v.render();
        assert_eq!(compact, r#"{"b":2,"a":[false,null]}"#);
        assert_eq!(Json::parse(&compact).unwrap(), v);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"b\": 2"), "{pretty}");
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn first_key_wins_on_get() {
        let v = Json::parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("3.5").unwrap().as_usize(), None);
        assert_eq!(Json::parse("-1").unwrap().as_usize(), None);
        assert_eq!(Json::parse("12").unwrap().as_usize(), Some(12));
    }
}
