//! Hot-path micro/macro benchmarks for the zero-allocation work (ISSUE 2):
//! allocating vs `_into` matmul kernels, allocating forward vs reusable
//! workspaces, and per-row vs batched end-to-end scoring.
//!
//! For a JSON summary with explicit speedup ratios (the acceptance
//! artefact `BENCH_hotpath.json`), run the companion binary:
//! `cargo run --release -p diagnet-bench --bin hotpath`.

use criterion::{criterion_group, criterion_main, Criterion};
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet_nn::linalg::{matmul, matmul_into};
use diagnet_nn::prelude::*;
use diagnet_nn::rng::SplitMix64;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::hint::black_box;
use std::sync::OnceLock;

fn random_matrix(rows: usize, cols: usize, rng: &mut SplitMix64) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.normal()).collect())
}

fn trained() -> &'static (DiagNet, Vec<Vec<f32>>, FeatureSchema) {
    static CELL: OnceLock<(DiagNet, Vec<Vec<f32>>, FeatureSchema)> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 11);
        cfg.n_scenarios = 20;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let split = ds.split(0.8, 11);
        let model = DiagNet::train(&DiagNetConfig::paper(), &split.train, 11).unwrap();
        let rows: Vec<Vec<f32>> = split
            .test
            .samples
            .iter()
            .take(64)
            .map(|s| s.features.clone())
            .collect();
        (model, rows, FeatureSchema::full())
    })
}

/// The paper network's widest GEMM (batch 64 through the 317→512 layer):
/// allocating product vs writing into a reused buffer.
fn bench_matmul_into(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let a = random_matrix(64, 317, &mut rng);
    let b = random_matrix(317, 512, &mut rng);
    let mut out = Matrix::zeros(64, 512);
    let mut group = c.benchmark_group("hotpath_matmul");
    group.bench_function("matmul_alloc", |bch| bch.iter(|| black_box(matmul(&a, &b))));
    group.bench_function("matmul_into", |bch| {
        bch.iter(|| {
            matmul_into(&a, &b, &mut out);
            black_box(out.get(0, 0))
        })
    });
    group.finish();
}

/// Full paper network, batch 64: allocating forward vs warm workspace.
fn bench_forward_ws(c: &mut Criterion) {
    let (model, rows, schema) = trained();
    let x = model.normalizer.apply_matrix(schema, rows);
    let mut ws = ForwardWorkspace::new(&model.network);
    model.network.forward_ws(&x, &mut ws); // warm up buffers once
    let mut group = c.benchmark_group("hotpath_forward");
    group.bench_function("forward_alloc", |b| {
        b.iter(|| black_box(model.network.forward(&x).get(0, 0)))
    });
    group.bench_function("forward_ws", |b| {
        b.iter(|| black_box(model.network.forward_ws(&x, &mut ws).get(0, 0)))
    });
    group.finish();
}

/// End-to-end scoring of 64 episodes: one rank_causes call per row vs the
/// batched pipeline (one forward GEMM + one attention backward).
fn bench_scoring(c: &mut Criterion) {
    let (model, rows, schema) = trained();
    let mut group = c.benchmark_group("hotpath_scoring64");
    group.sample_size(20);
    group.bench_function("per_row", |b| {
        b.iter(|| {
            black_box(
                rows.iter()
                    .map(|r| model.rank_causes(r, schema))
                    .collect::<Vec<_>>(),
            )
        })
    });
    group.bench_function("score_batch", |b| {
        b.iter(|| black_box(model.score_batch(rows, schema)))
    });
    group.finish();
}

criterion_group!(benches, bench_matmul_into, bench_forward_ws, bench_scoring);
criterion_main!(benches);
