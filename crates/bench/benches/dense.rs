//! Dense-layer and matmul kernel benchmarks at DiagNet's layer sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use diagnet_nn::layer::Layer;
use diagnet_nn::linalg::{matmul, matmul_at, matmul_bt};
use diagnet_nn::tensor::Matrix;
use diagnet_rng::SplitMix64;
use std::hint::black_box;

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.normal()).collect())
}

fn bench_dense_layers(c: &mut Criterion) {
    // The paper's MLP: 317 → 512 → 128 → 7 at batch 128.
    let mut group = c.benchmark_group("dense_forward");
    for (name, i, o) in [
        ("fc1_317x512", 317, 512),
        ("fc2_512x128", 512, 128),
        ("out_128x7", 128, 7),
    ] {
        let layer = Layer::dense(i, o, 1);
        let x = random(128, i, 2);
        group.bench_function(name, |b| b.iter(|| black_box(layer.forward(&x))));
    }
    group.finish();
}

fn bench_dense_backward(c: &mut Criterion) {
    let layer = Layer::dense(317, 512, 1);
    let x = random(128, 317, 2);
    let (y, cache) = layer.forward_cached(&x);
    let gout = Matrix::full(y.rows(), y.cols(), 0.1);
    c.bench_function("dense_backward_fc1", |b| {
        b.iter(|| {
            let mut grads = layer.zero_grads();
            black_box(layer.backward(&x, &cache, &gout, Some(&mut grads)))
        })
    });
}

fn bench_matmul_kernels(c: &mut Criterion) {
    let a = random(128, 317, 3);
    let w = random(317, 512, 4);
    let gy = random(128, 512, 5);
    let mut group = c.benchmark_group("matmul_kernels");
    group.bench_function("matmul_128x317x512", |b| {
        b.iter(|| black_box(matmul(&a, &w)))
    });
    group.bench_function("matmul_bt_128x512x317", |b| {
        b.iter(|| black_box(matmul_bt(&gy, &w)))
    });
    group.bench_function("matmul_at_317x128x512", |b| {
        b.iter(|| black_box(matmul_at(&a, &gy)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_layers,
    bench_dense_backward,
    bench_matmul_kernels
);
criterion_main!(benches);
