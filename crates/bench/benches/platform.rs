//! Analysis-service benchmarks: probe-ingestion throughput and registry
//! read cost under snapshotting.

use criterion::{criterion_group, criterion_main, Criterion};
use diagnet_platform::{ModelRegistry, ProbeCollector};
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::hint::black_box;

fn bench_collector(c: &mut Criterion) {
    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, 9);
    cfg.n_scenarios = 5;
    let samples = Dataset::generate(&world, &cfg).expect("generate").samples;
    let mut group = c.benchmark_group("collector");
    group.bench_function("submit_500", |b| {
        b.iter(|| {
            let collector = ProbeCollector::new(100_000, FeatureSchema::full());
            for s in &samples {
                collector.submit(s.clone());
            }
            black_box(collector.len())
        })
    });
    let collector = ProbeCollector::new(100_000, FeatureSchema::full());
    for s in &samples {
        collector.submit(s.clone());
    }
    group.bench_function("snapshot_500", |b| {
        b.iter(|| black_box(collector.snapshot()))
    });
    group.finish();
}

fn bench_registry_reads(c: &mut Criterion) {
    let registry = ModelRegistry::new();
    // Reads on an empty registry measure the lock + clone path floor.
    c.bench_function("registry_model_lookup", |b| {
        b.iter(|| black_box(registry.model_for(diagnet_sim::service::ServiceId(3))))
    });
}

criterion_group!(benches, bench_collector, bench_registry_reads);
criterion_main!(benches);
