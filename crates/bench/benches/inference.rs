//! Inference-latency benchmarks (paper: 45 ms per root-cause inference).
//! Covers the coarse forward pass, the attention backward pass, and the
//! complete rank-causes pipeline with ensemble averaging.

use criterion::{criterion_group, criterion_main, Criterion};
use diagnet::config::DiagNetConfig;
use diagnet::model::{DiagNet, PipelineMode};
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::hint::black_box;
use std::sync::OnceLock;

fn trained() -> &'static (DiagNet, Vec<Vec<f32>>, FeatureSchema) {
    static CELL: OnceLock<(DiagNet, Vec<Vec<f32>>, FeatureSchema)> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::new();
        let mut cfg = DatasetConfig::small(&world, 7);
        cfg.n_scenarios = 20;
        let ds = Dataset::generate(&world, &cfg).expect("generate");
        let split = ds.split(0.8, 7);
        let model = DiagNet::train(&DiagNetConfig::paper(), &split.train, 7).unwrap();
        let rows: Vec<Vec<f32>> = split
            .test
            .samples
            .iter()
            .take(64)
            .map(|s| s.features.clone())
            .collect();
        (model, rows, FeatureSchema::full())
    })
}

fn bench_single_sample(c: &mut Criterion) {
    let (model, rows, schema) = trained();
    let mut group = c.benchmark_group("inference_single");
    group.bench_function("coarse_predict", |b| {
        b.iter(|| black_box(model.coarse_predict(&rows[0], schema)))
    });
    group.bench_function("attention_only", |b| {
        b.iter(|| black_box(model.rank_causes_with(&rows[0], schema, PipelineMode::AttentionOnly)))
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| black_box(model.rank_causes(&rows[0], schema)))
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let (model, rows, schema) = trained();
    let mut group = c.benchmark_group("inference_batch64");
    group.sample_size(20);
    group.bench_function("rank_causes_batch", |b| {
        b.iter(|| black_box(model.rank_causes_batch(rows, schema)))
    });
    group.bench_function("coarse_predict_batch", |b| {
        b.iter(|| black_box(model.coarse_predict_batch(rows, schema)))
    });
    group.finish();
}

criterion_group!(benches, bench_single_sample, bench_batch);
criterion_main!(benches);
