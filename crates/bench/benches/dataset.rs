//! Simulator throughput: observation generation and full-dataset builds.

use criterion::{criterion_group, criterion_main, Criterion};
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::fault::{Fault, FaultFamily};
use diagnet_sim::region::Region;
use diagnet_sim::scenario::Scenario;
use diagnet_sim::world::World;
use std::hint::black_box;

fn bench_observe(c: &mut Criterion) {
    let world = World::new();
    let sid = world.catalog.all_ids()[5];
    let nominal = Scenario::nominal(12.0);
    let faulty = Scenario::with_faults(
        vec![
            Fault::new(FaultFamily::PacketLoss, Region::Grav),
            Fault::new(FaultFamily::Jitter, Region::Sing),
        ],
        20.0,
    );
    let mut group = c.benchmark_group("observe");
    group.bench_function("nominal_scenario", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(world.observe(Region::Amst, sid, &nominal, seed))
        })
    });
    group.bench_function("two_fault_scenario", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(world.observe(Region::Amst, sid, &faulty, seed))
        })
    });
    group.finish();
}

fn bench_dataset_generation(c: &mut Criterion) {
    let world = World::new();
    let mut group = c.benchmark_group("dataset_generate");
    group.sample_size(10);
    for scenarios in [10usize, 40] {
        let cfg = DatasetConfig::standard(&world, scenarios, 9);
        group.bench_function(format!("{}_samples", cfg.n_samples()), |b| {
            b.iter(|| black_box(Dataset::generate(&world, &cfg).expect("generate")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observe, bench_dataset_generation);
criterion_main!(benches);
