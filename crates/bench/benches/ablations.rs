//! Timing ablations over DiagNet's design choices (DESIGN.md §5): the
//! pipeline stages and the attention path, measured on a trained model.
//! (Quality ablations — how each stage changes Recall@k — are produced by
//! the `ablation` experiment binary.)

use criterion::{criterion_group, criterion_main, Criterion};
use diagnet::config::DiagNetConfig;
use diagnet::model::{DiagNet, PipelineMode};
use diagnet_nn::pool::PoolOp;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::hint::black_box;

fn bench_pipeline_stages(c: &mut Criterion) {
    let world = World::new();
    let mut ds_cfg = DatasetConfig::small(&world, 11);
    ds_cfg.n_scenarios = 15;
    let ds = Dataset::generate(&world, &ds_cfg).expect("generate");
    let split = ds.split(0.8, 11);
    let model = DiagNet::train(&DiagNetConfig::fast(), &split.train, 11).unwrap();
    let schema = FeatureSchema::full();
    let row = split.test.samples[0].features.clone();
    let mut group = c.benchmark_group("pipeline_stage_cost");
    for (name, mode) in [
        ("attention_only", PipelineMode::AttentionOnly),
        ("attention_weighted", PipelineMode::AttentionWeighted),
        ("full_with_ensemble", PipelineMode::Full),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.rank_causes_with(&row, &schema, mode)))
        });
    }
    group.finish();
}

fn bench_filter_counts(c: &mut Criterion) {
    // Cost of the coarse forward pass as the filter count grows.
    let mut group = c.benchmark_group("filters_forward_cost");
    let x = diagnet_nn::tensor::Matrix::full(128, 55, 0.5);
    for filters in [8usize, 24, 64] {
        let cfg = DiagNetConfig {
            filters,
            pool_ops: PoolOp::standard_bank(),
            ..DiagNetConfig::paper()
        };
        let net = DiagNet::build_network(&cfg, 1);
        group.bench_function(format!("{filters}_filters"), |b| {
            b.iter(|| black_box(net.forward(&x)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_stages, bench_filter_counts);
criterion_main!(benches);
