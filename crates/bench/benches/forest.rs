//! Random-forest benchmarks: training at the paper's configuration
//! (Gini, 50 estimators, depth 10) and batch scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use diagnet_forest::{ExtensibleForest, ForestConfig};
use diagnet_rng::SplitMix64;
use std::hint::black_box;

/// Synthetic 55-feature root-cause data (the full cause space size).
fn cause_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut rng = SplitMix64::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<f32> = (0..55).map(|_| rng.normal()).collect();
        let label = if i % 5 == 0 {
            55
        } else {
            let cause = i % 40;
            row[cause] += 4.0;
            cause
        };
        rows.push(row);
        labels.push(label);
    }
    (rows, labels)
}

fn bench_training(c: &mut Criterion) {
    let (rows, labels) = cause_data(4000, 1);
    let mut group = c.benchmark_group("forest_train");
    group.sample_size(10);
    for n_trees in [10usize, 50] {
        let cfg = ForestConfig {
            n_trees,
            seed: 3,
            ..ForestConfig::default()
        };
        group.bench_function(format!("{n_trees}_trees_4k_samples"), |b| {
            b.iter(|| black_box(ExtensibleForest::fit(&cfg, &rows, &labels, 55)))
        });
    }
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let (rows, labels) = cause_data(4000, 2);
    let model = ExtensibleForest::fit(&ForestConfig::paper_default(5), &rows, &labels, 55);
    let test: Vec<Vec<f32>> = rows[..256].to_vec();
    let mut group = c.benchmark_group("forest_score");
    group.bench_function("single", |b| b.iter(|| black_box(model.scores(&rows[0]))));
    group.bench_function("batch_256", |b| {
        b.iter(|| black_box(model.scores_batch(&test)))
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_scoring);
criterion_main!(benches);
