//! LandPooling layer micro-benchmarks: forward and backward cost at the
//! paper's dimensions (f = 24, k = 5, |Ω| = 13) as the landmark count
//! scales — the layer is the one component whose cost grows with fleet
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diagnet_nn::layer::Layer;
use diagnet_nn::pool::PoolOp;
use diagnet_nn::tensor::Matrix;
use diagnet_rng::SplitMix64;
use std::hint::black_box;

fn random_batch(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.normal()).collect())
}

fn bench_forward(c: &mut Criterion) {
    let layer = Layer::land_pool(24, 5, 5, PoolOp::standard_bank(), 1);
    let mut group = c.benchmark_group("landpool_forward");
    for ell in [7usize, 10, 50, 200] {
        let x = random_batch(128, ell * 5 + 5, ell as u64);
        group.bench_with_input(BenchmarkId::from_parameter(ell), &x, |b, x| {
            b.iter(|| black_box(layer.forward(x)))
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let layer = Layer::land_pool(24, 5, 5, PoolOp::standard_bank(), 1);
    let mut group = c.benchmark_group("landpool_backward");
    for ell in [7usize, 10, 50] {
        let x = random_batch(128, ell * 5 + 5, ell as u64);
        let (y, cache) = layer.forward_cached(&x);
        let gout = Matrix::full(y.rows(), y.cols(), 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(ell), &x, |b, x| {
            b.iter(|| {
                let mut grads = layer.zero_grads();
                black_box(layer.backward(x, &cache, &gout, Some(&mut grads)))
            })
        });
    }
    group.finish();
}

fn bench_pool_banks(c: &mut Criterion) {
    // Ablation: cost of the Ω bank variants.
    let mut group = c.benchmark_group("landpool_pool_banks");
    let x = random_batch(128, 10 * 5 + 5, 3);
    for (name, ops) in [
        ("avg_only", PoolOp::minimal_bank()),
        ("min_max_avg", PoolOp::small_bank()),
        ("full_13_ops", PoolOp::standard_bank()),
    ] {
        let layer = Layer::land_pool(24, 5, 5, ops, 1);
        group.bench_function(name, |b| b.iter(|| black_box(layer.forward(&x))));
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward, bench_pool_banks);
criterion_main!(benches);
