//! Training-cost benchmarks (paper Fig. 9: 32 s general / 4 s per
//! specialised model on a laptop CPU): one epoch of the coarse classifier
//! and one full specialisation run on a small dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet_nn::network::Gradients;
use diagnet_nn::optim::{Optimizer, SgdNesterov};
use diagnet_nn::tensor::Matrix;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::hint::black_box;

fn training_data() -> (Matrix, Vec<usize>) {
    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, 3);
    cfg.n_scenarios = 20;
    let ds = Dataset::generate(&world, &cfg).expect("generate");
    let schema = FeatureSchema::known();
    let (rows, labels) = ds.to_rows(&schema, 0.0);
    (Matrix::from_rows(&rows), labels)
}

fn bench_epoch(c: &mut Criterion) {
    let (x, y) = training_data();
    let mut group = c.benchmark_group("training_epoch");
    group.sample_size(10);
    for (name, cfg) in [
        ("paper_arch", DiagNetConfig::paper()),
        ("fast_arch", DiagNetConfig::fast()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut net = DiagNet::build_network(&cfg, 1);
                let mut opt = SgdNesterov::paper_default();
                let mut grads = Gradients::zeros_like(&net);
                // One epoch over the data in batches of 128.
                let order: Vec<usize> = (0..x.rows()).collect();
                for chunk in order.chunks(128) {
                    let bx = x.select_rows(chunk);
                    let by: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
                    grads.zero();
                    net.loss_gradients(&bx, &by, &mut grads);
                    opt.step(&mut net, &grads);
                }
                black_box(net)
            })
        });
    }
    group.finish();
}

fn bench_specialisation(c: &mut Criterion) {
    let world = World::new();
    let mut ds_cfg = DatasetConfig::small(&world, 5);
    ds_cfg.n_scenarios = 20;
    let ds = Dataset::generate(&world, &ds_cfg).expect("generate");
    let split = ds.split(0.8, 5);
    let general = DiagNet::train(&DiagNetConfig::fast(), &split.train, 5).unwrap();
    let sid = world.catalog.held_out_ids()[0];
    let service_data = split.train.filter_service(sid);
    let mut group = c.benchmark_group("specialisation");
    group.sample_size(10);
    group.bench_function("specialise_one_service", |b| {
        b.iter(|| black_box(general.specialize(&service_data, 9).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_epoch, bench_specialisation);
criterion_main!(benches);
