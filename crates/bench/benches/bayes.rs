//! KDE naive-Bayes benchmarks: density evaluation, model fitting and
//! the full 55-cause scoring pass.

use criterion::{criterion_group, criterion_main, Criterion};
use diagnet_bayes::{ExtensibleNaiveBayes, Kde, NaiveBayesConfig};
use diagnet_rng::SplitMix64;
use std::hint::black_box;

fn bench_kde(c: &mut Criterion) {
    let mut rng = SplitMix64::new(1);
    let values: Vec<f32> = (0..5000).map(|_| rng.normal_with(50.0, 12.0)).collect();
    let kde = Kde::fit(&values);
    let mut group = c.benchmark_group("kde");
    group.bench_function("fit_5000_values", |b| {
        b.iter(|| black_box(Kde::fit(&values)))
    });
    group.bench_function("density_eval", |b| b.iter(|| black_box(kde.density(47.3))));
    group.finish();
}

fn nb_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut rng = SplitMix64::new(seed);
    let kinds: Vec<usize> = (0..55).map(|j| j % 10).collect();
    let visible: Vec<usize> = (0..40).collect();
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<f32> = (0..55).map(|_| rng.normal_with(20.0, 5.0)).collect();
        let label = if i % 5 == 0 {
            55
        } else {
            let cause = i % 40;
            row[cause] += 30.0;
            cause
        };
        rows.push(row);
        labels.push(label);
    }
    (rows, labels, kinds, visible)
}

fn bench_fit_and_score(c: &mut Criterion) {
    let (rows, labels, kinds, visible) = nb_data(4000, 3);
    let cfg = NaiveBayesConfig::default();
    let mut group = c.benchmark_group("naive_bayes");
    group.sample_size(10);
    group.bench_function("fit_4k_samples", |b| {
        b.iter(|| {
            black_box(ExtensibleNaiveBayes::fit(
                &cfg, &rows, &labels, 55, &kinds, &visible,
            ))
        })
    });
    let model = ExtensibleNaiveBayes::fit(&cfg, &rows, &labels, 55, &kinds, &visible);
    group.bench_function("score_single_55_causes", |b| {
        b.iter(|| black_box(model.scores(&rows[0])))
    });
    let test: Vec<Vec<f32>> = rows[..128].to_vec();
    group.bench_function("score_batch_128", |b| {
        b.iter(|| black_box(model.scores_batch(&test)))
    });
    group.finish();
}

criterion_group!(benches, bench_kde, bench_fit_and_score);
criterion_main!(benches);
