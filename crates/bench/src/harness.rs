//! Shared experiment plumbing: dataset creation, model training, and
//! evaluation-sample assembly following the paper's protocol (§IV-A):
//! general model on eight services, specialised models per service (all
//! reported scores use the specialised models), baselines trained on the
//! identical training set, EAST/GRAV/SEAT landmarks hidden from training.

use diagnet::backend::{Backend, BayesBackend, ForestBackend};
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet::ranking::CauseRanking;
use diagnet::transfer::SpecializedModels;
use diagnet_bayes::NaiveBayesConfig;
use diagnet_sim::dataset::{Dataset, DatasetConfig, SplitDataset};
use diagnet_sim::metrics::{CoarseFamily, FeatureSchema};
use diagnet_sim::region::Region;
use diagnet_sim::service::ServiceId;
use diagnet_sim::world::World;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Harness-level configuration, read from the environment.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Number of fault scenarios (samples = scenarios × 10 regions × 10
    /// services).
    pub n_scenarios: usize,
    /// Master seed.
    pub seed: u64,
    /// DiagNet hyper-parameters.
    pub model_config: DiagNetConfig,
}

impl HarnessConfig {
    /// Read `DIAGNET_SCENARIOS`, `DIAGNET_SEED` and `DIAGNET_CONFIG`.
    pub fn from_env() -> Self {
        let n_scenarios = std::env::var("DIAGNET_SCENARIOS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(400);
        let seed = std::env::var("DIAGNET_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        let model_config = match std::env::var("DIAGNET_CONFIG").as_deref() {
            Ok("fast") => DiagNetConfig::fast(),
            _ => DiagNetConfig::paper(),
        };
        HarnessConfig {
            n_scenarios,
            seed,
            model_config,
        }
    }
}

/// World + dataset + split shared by the experiments.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The simulated deployment.
    pub world: World,
    /// Train/test split (hidden-landmark protocol).
    pub split: SplitDataset,
    /// All ten landmarks (test-time view).
    pub full_schema: FeatureSchema,
    /// Seven known landmarks (training view).
    pub train_schema: FeatureSchema,
    /// Active configuration.
    pub config: HarnessConfig,
}

impl ExperimentContext {
    /// Generate the dataset and split it 80/20.
    pub fn create(config: HarnessConfig) -> Self {
        let world = World::new();
        let ds_cfg = DatasetConfig::standard(&world, config.n_scenarios, config.seed);
        eprintln!(
            "[harness] generating {} samples ({} scenarios)…",
            ds_cfg.n_samples(),
            config.n_scenarios
        );
        let dataset = Dataset::generate(&world, &ds_cfg).expect("generate");
        eprintln!(
            "[harness] dataset: {} samples ({} nominal / {} faulty)",
            dataset.len(),
            dataset.n_nominal(),
            dataset.n_faulty()
        );
        let split = dataset.split(0.8, config.seed ^ 0xBEEF);
        ExperimentContext {
            world,
            split,
            full_schema: FeatureSchema::full(),
            train_schema: FeatureSchema::known(),
            config,
        }
    }

    /// Create with a custom dataset configuration (Fig. 8 varies client
    /// regions).
    pub fn create_with_dataset(config: HarnessConfig, ds_cfg: &DatasetConfig) -> Self {
        let world = World::new();
        let dataset = Dataset::generate(&world, ds_cfg).expect("generate");
        let split = dataset.split(0.8, config.seed ^ 0xBEEF);
        ExperimentContext {
            world,
            split,
            full_schema: FeatureSchema::full(),
            train_schema: FeatureSchema::known(),
            config,
        }
    }
}

/// One evaluation sample: a faulty test observation with its ground truth
/// resolved into the full schema.
#[derive(Debug, Clone)]
pub struct EvalSample {
    /// Raw features (full schema).
    pub features: Vec<f32>,
    /// True cause index in the full schema.
    pub truth: usize,
    /// Coarse family of the fault.
    pub family: CoarseFamily,
    /// Region the fault was injected in.
    pub region: Region,
    /// Whether the fault is near a hidden ("new") landmark.
    pub near_hidden: bool,
    /// Service the client was using.
    pub service: ServiceId,
}

/// Which model to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Specialised DiagNet models (the paper's reported configuration).
    DiagNet,
    /// The general DiagNet model only (Fig. 10 comparison).
    DiagNetGeneral,
    /// Extensible random forest baseline.
    Forest,
    /// Extensible KDE naive Bayes baseline.
    NaiveBayes,
}

impl ModelKind {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::DiagNet => "DiagNet",
            ModelKind::DiagNetGeneral => "DiagNet (general)",
            ModelKind::Forest => "Random Forest",
            ModelKind::NaiveBayes => "Naive Bayes",
        }
    }
}

/// How a [`BackendEntry`] scores evaluation samples.
#[derive(Clone)]
pub enum Scorer {
    /// Dispatch each sample to its service's specialised DiagNet (the
    /// paper's reported configuration).
    PerService(Arc<SpecializedModels>),
    /// One backend serves every sample.
    Single(Arc<dyn Backend>),
}

impl Scorer {
    /// Rank one evaluation sample.
    pub fn rank(&self, sample: &EvalSample, schema: &FeatureSchema) -> CauseRanking {
        match self {
            Scorer::PerService(suite) => suite
                .for_service(sample.service)
                .rank_causes(&sample.features, schema),
            Scorer::Single(backend) => backend.rank_causes(&sample.features, schema),
        }
    }

    /// Rank a batch through the backend's batched kernel
    /// ([`Backend::rank_causes_batch`]); per-service dispatch groups the
    /// samples by service first. Bit-identical to per-sample
    /// [`Scorer::rank`] calls, in input order.
    pub fn rank_batch(&self, samples: &[EvalSample], schema: &FeatureSchema) -> Vec<CauseRanking> {
        match self {
            Scorer::PerService(suite) => {
                let mut by_service: BTreeMap<ServiceId, Vec<usize>> = BTreeMap::new();
                for (i, s) in samples.iter().enumerate() {
                    by_service.entry(s.service).or_default().push(i);
                }
                let mut out: Vec<Option<CauseRanking>> = vec![None; samples.len()];
                for (sid, idxs) in by_service {
                    let rows: Vec<Vec<f32>> =
                        idxs.iter().map(|&i| samples[i].features.clone()).collect();
                    let ranked = suite.for_service(sid).rank_causes_batch(&rows, schema);
                    for (i, r) in idxs.into_iter().zip(ranked) {
                        out[i] = Some(r);
                    }
                }
                out.into_iter()
                    .map(|r| r.expect("every sample scored"))
                    .collect()
            }
            Scorer::Single(backend) => {
                let rows: Vec<Vec<f32>> = samples.iter().map(|s| s.features.clone()).collect();
                backend.rank_causes_batch(&rows, schema)
            }
        }
    }
}

/// One row of the harness's backend registry: a comparison label plus the
/// scoring strategy behind it.
#[derive(Clone)]
pub struct BackendEntry {
    /// Which comparison row this is.
    pub kind: ModelKind,
    /// The scoring strategy.
    pub scorer: Scorer,
}

impl BackendEntry {
    /// Figure label.
    pub fn label(&self) -> &'static str {
        self.kind.label()
    }

    /// Batch-score eval samples through the backend's batched kernel;
    /// returns `(scores, truth)` pairs ready for `diagnet_eval`.
    pub fn score_all(
        &self,
        samples: &[EvalSample],
        schema: &FeatureSchema,
    ) -> Vec<(Vec<f32>, usize)> {
        self.scorer
            .rank_batch(samples, schema)
            .into_iter()
            .zip(samples)
            .map(|(r, s)| (r.scores, s.truth))
            .collect()
    }
}

/// All trained models plus their training costs.
pub struct TrainedModels {
    /// General DiagNet (trained on the first eight services).
    pub general: Arc<DiagNet>,
    /// Specialised models for every service.
    pub specialized: Arc<SpecializedModels>,
    /// Random-forest baseline (trained on the full training set).
    pub forest: Arc<ForestBackend>,
    /// Naive-Bayes baseline.
    pub bayes: Arc<BayesBackend>,
    /// Wall-clock seconds to train the general model.
    pub general_train_secs: f64,
    /// Mean wall-clock seconds per specialised model.
    pub specialized_train_secs: f64,
}

impl TrainedModels {
    /// Train everything on `ctx.split.train` following §IV-A(c).
    pub fn train(ctx: &ExperimentContext) -> Self {
        let cfg = &ctx.config.model_config;
        let seed = ctx.config.seed;

        let general_ids = ctx.world.catalog.general_ids();
        let general_data = ctx.split.train.filter_services(&general_ids);
        eprintln!(
            "[harness] training general DiagNet on {} samples…",
            general_data.len()
        );
        let t0 = Instant::now();
        let general = DiagNet::train(cfg, &general_data, seed).expect("general training");
        let general_train_secs = t0.elapsed().as_secs_f64();
        eprintln!(
            "[harness] general model: {} epochs in {:.1}s",
            general.history.epochs_run, general_train_secs
        );

        let all_ids = ctx.world.catalog.all_ids();
        let t1 = Instant::now();
        let specialized =
            SpecializedModels::train(general.clone(), &ctx.split.train, &all_ids, seed ^ 0x51)
                .expect("specialisation");
        let specialized_train_secs = t1.elapsed().as_secs_f64() / all_ids.len() as f64;
        eprintln!(
            "[harness] {} specialised models, {:.1}s each on average",
            all_ids.len(),
            specialized_train_secs
        );

        eprintln!("[harness] training baselines…");
        let forest = ForestBackend::train(&cfg.forest, &ctx.split.train, &ctx.train_schema, seed);
        let bayes = BayesBackend::train(
            &NaiveBayesConfig::default(),
            &ctx.split.train,
            &ctx.train_schema,
        );

        TrainedModels {
            general: Arc::new(general),
            specialized: Arc::new(specialized),
            forest: Arc::new(forest),
            bayes: Arc::new(bayes),
            general_train_secs,
            specialized_train_secs,
        }
    }

    /// The registry entry for one comparison row.
    pub fn entry(&self, kind: ModelKind) -> BackendEntry {
        let scorer = match kind {
            ModelKind::DiagNet => Scorer::PerService(Arc::clone(&self.specialized)),
            ModelKind::DiagNetGeneral => {
                Scorer::Single(Arc::clone(&self.general) as Arc<dyn Backend>)
            }
            ModelKind::Forest => Scorer::Single(Arc::clone(&self.forest) as Arc<dyn Backend>),
            ModelKind::NaiveBayes => Scorer::Single(Arc::clone(&self.bayes) as Arc<dyn Backend>),
        };
        BackendEntry { kind, scorer }
    }

    /// Registry entries for a comparison set, in the given order.
    pub fn entries_for(&self, kinds: &[ModelKind]) -> Vec<BackendEntry> {
        kinds.iter().map(|&k| self.entry(k)).collect()
    }

    /// Score one evaluation sample with the chosen model.
    pub fn scores(&self, kind: ModelKind, sample: &EvalSample, schema: &FeatureSchema) -> Vec<f32> {
        self.entry(kind).scorer.rank(sample, schema).scores
    }

    /// Batch-score eval samples through each backend's batched kernel;
    /// returns `(scores, truth)` pairs ready for `diagnet_eval`.
    pub fn score_all(
        &self,
        kind: ModelKind,
        samples: &[EvalSample],
        schema: &FeatureSchema,
    ) -> Vec<(Vec<f32>, usize)> {
        self.entry(kind).score_all(samples, schema)
    }
}

/// Extract the faulty test samples as [`EvalSample`]s.
pub fn eval_samples(ctx: &ExperimentContext) -> Vec<EvalSample> {
    let full = &ctx.full_schema;
    ctx.split
        .test
        .samples
        .iter()
        .filter_map(|s| {
            let cause = s.label.cause()?;
            Some(EvalSample {
                features: s.features.clone(),
                truth: full.index_of(cause).expect("cause in full schema"),
                family: match s.label {
                    diagnet_sim::world::Label::Faulty { family, .. } => family,
                    diagnet_sim::world::Label::Nominal => unreachable!(),
                },
                region: s.label.cause_region().expect("faulty sample has a region"),
                near_hidden: s.label.is_near_hidden_landmark().unwrap_or(false),
                service: s.service,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HarnessConfig {
        HarnessConfig {
            n_scenarios: 30,
            seed: 7,
            model_config: DiagNetConfig::fast(),
        }
    }

    #[test]
    fn context_and_eval_samples() {
        let ctx = ExperimentContext::create(tiny_config());
        assert_eq!(ctx.split.train.len() + ctx.split.test.len(), 30 * 100);
        let samples = eval_samples(&ctx);
        assert!(!samples.is_empty());
        assert!(
            samples.iter().any(|s| s.near_hidden),
            "some faults near hidden landmarks"
        );
        assert!(
            samples.iter().any(|s| !s.near_hidden),
            "some faults near known landmarks"
        );
        for s in &samples {
            assert!(s.truth < 55);
            assert_eq!(s.features.len(), 55);
        }
    }

    #[test]
    fn models_train_and_score() {
        let ctx = ExperimentContext::create(tiny_config());
        let models = TrainedModels::train(&ctx);
        let samples = eval_samples(&ctx);
        let subset = &samples[..samples.len().min(5)];
        for kind in [
            ModelKind::DiagNet,
            ModelKind::DiagNetGeneral,
            ModelKind::Forest,
            ModelKind::NaiveBayes,
        ] {
            let scored = models.score_all(kind, subset, &ctx.full_schema);
            assert_eq!(scored.len(), subset.len());
            for (i, (scores, truth)) in scored.iter().enumerate() {
                assert_eq!(scores.len(), 55);
                assert!(*truth < 55);
                // The batched registry path must match per-sample scoring
                // bit for bit.
                assert_eq!(
                    scores,
                    &models.scores(kind, &subset[i], &ctx.full_schema),
                    "batch/single divergence for {:?}",
                    kind
                );
            }
        }
        assert!(models.general_train_secs > 0.0);
    }
}
