//! The experiment implementations, one function per paper artefact.
//!
//! Functions take a pre-built [`ExperimentContext`] and (where applicable)
//! pre-trained [`TrainedModels`], so the `all` binary can share one
//! training run across every figure.

use crate::harness::{
    eval_samples, EvalSample, ExperimentContext, HarnessConfig, ModelKind, Scorer, TrainedModels,
};
use crate::report::{json_out, pct, Table};
use diagnet::backend::{Backend, BayesBackend, ForestBackend};
use diagnet::model::DiagNet;
use diagnet_bayes::NaiveBayesConfig;
use diagnet_eval::{
    accuracy_with_ci, brier_score, expected_calibration_error, grouped_recall_at_k, recall_curve,
    ConfusionMatrix,
};
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::DatasetConfig;
use diagnet_sim::fault::{Fault, FaultFamily};
use diagnet_sim::metrics::{CoarseFamily, FeatureId, LandmarkMetric, ALL_FAMILIES};
use diagnet_sim::region::{Region, ALL_REGIONS};
use diagnet_sim::scenario::Scenario;
use diagnet_sim::world::Label;
use rayon::prelude::*;
use serde_json::json;
use std::time::Instant;

/// The three models compared throughout the evaluation.
pub const COMPARED: [ModelKind; 3] = [ModelKind::DiagNet, ModelKind::Forest, ModelKind::NaiveBayes];

/// The paper's three models plus the general DiagNet (the paper reports
/// specialised scores only; the general row diagnoses the specialisation
/// delta).
pub const COMPARED_WITH_GENERAL: [ModelKind; 4] = [
    ModelKind::DiagNet,
    ModelKind::DiagNetGeneral,
    ModelKind::Forest,
    ModelKind::NaiveBayes,
];

// ---------------------------------------------------------------------------
// Fig. 5 — Recall@k near new vs known landmarks.
// ---------------------------------------------------------------------------

/// Reproduce Fig. 5: Recall@k (k = 1…5) for faults near new landmarks (a)
/// and known landmarks (b), for DiagNet and both baselines.
pub fn fig5(ctx: &ExperimentContext, models: &TrainedModels) {
    let samples = eval_samples(ctx);
    for (hidden, title) in [
        (true, "(a) faults near NEW landmarks"),
        (false, "(b) faults near KNOWN landmarks"),
    ] {
        let subset: Vec<EvalSample> = samples
            .iter()
            .filter(|s| s.near_hidden == hidden)
            .cloned()
            .collect();
        let mut table = Table::new(
            &format!("Fig. 5 {title} — Recall@k ({} samples)", subset.len()),
            &["model", "R@1", "R@2", "R@3", "R@4", "R@5"],
        );
        for entry in models.entries_for(&COMPARED_WITH_GENERAL) {
            let scored = entry.score_all(&subset, &ctx.full_schema);
            let curve = recall_curve(&scored, 5);
            json_out(
                "fig5",
                &json!({
                    "model": entry.label(),
                    "near_hidden": hidden,
                    "n": subset.len(),
                    "recall": curve,
                }),
            );
            let mut row = vec![entry.label().to_string()];
            row.extend(curve.iter().map(|&r| pct(r)));
            table.row(row);
        }
        table.print();
    }
}

// ---------------------------------------------------------------------------
// Fig. 6 — Recall per fault family and per region.
// ---------------------------------------------------------------------------

/// Reproduce Fig. 6: Recall@5 per fault family (top) and per fault region
/// (bottom); hidden regions marked with `*`.
pub fn fig6(ctx: &ExperimentContext, models: &TrainedModels) {
    let samples = eval_samples(ctx);
    // Per family.
    let mut table = Table::new(
        "Fig. 6 (top) — Recall@5 per fault family",
        &[
            "model",
            "Uplink",
            "Latency",
            "Jitter",
            "Loss",
            "Bandwidth",
            "Load",
        ],
    );
    let families = [
        CoarseFamily::UplinkLatency,
        CoarseFamily::LinkLatency,
        CoarseFamily::LinkJitter,
        CoarseFamily::LinkLoss,
        CoarseFamily::LinkBandwidth,
        CoarseFamily::LocalLoad,
    ];
    for entry in models.entries_for(&COMPARED) {
        let ranked = entry.scorer.rank_batch(&samples, &ctx.full_schema);
        let grouped: Vec<(CoarseFamily, Vec<f32>, usize)> = samples
            .iter()
            .zip(ranked)
            .map(|(s, r)| (s.family, r.scores, s.truth))
            .collect();
        let recalls = grouped_recall_at_k(&grouped, 5);
        let mut row = vec![entry.label().to_string()];
        for fam in families {
            let (r, n) = recalls.get(&fam).copied().unwrap_or((0.0, 0));
            row.push(if n == 0 { "—".into() } else { pct(r) });
            json_out(
                "fig6",
                &json!({"model": entry.label(), "group": "family", "key": fam.name(), "recall5": r, "n": n}),
            );
        }
        table.row(row);
    }
    table.print();

    // Per region.
    let fault_regions: Vec<Region> = diagnet_sim::region::FAULT_REGIONS.to_vec();
    let headers: Vec<String> = std::iter::once("model".to_string())
        .chain(fault_regions.iter().map(|r| {
            if r.is_hidden_landmark() {
                format!("{}*", r.code())
            } else {
                r.code().to_string()
            }
        }))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Fig. 6 (bottom) — Recall@5 per fault region (* = hidden)",
        &headers_ref,
    );
    for entry in models.entries_for(&COMPARED) {
        let ranked = entry.scorer.rank_batch(&samples, &ctx.full_schema);
        let grouped: Vec<(Region, Vec<f32>, usize)> = samples
            .iter()
            .zip(ranked)
            .map(|(s, r)| (s.region, r.scores, s.truth))
            .collect();
        let recalls = grouped_recall_at_k(&grouped, 5);
        let mut row = vec![entry.label().to_string()];
        for region in &fault_regions {
            let (r, n) = recalls.get(region).copied().unwrap_or((0.0, 0));
            row.push(if n == 0 { "—".into() } else { pct(r) });
            json_out(
                "fig6",
                &json!({"model": entry.label(), "group": "region", "key": region.code(), "recall5": r, "n": n}),
            );
        }
        table.row(row);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// Fig. 7 — coarse classifier F1 and accuracy.
// ---------------------------------------------------------------------------

/// Reproduce Fig. 7: per-family F1 of DiagNet's coarse classifier on
/// faulty test samples, split by known/new landmark proximity, plus
/// accuracy ± CI.
pub fn fig7(ctx: &ExperimentContext, models: &TrainedModels) {
    let samples = eval_samples(ctx);
    let mut table = Table::new(
        "Fig. 7 — coarse classifier F1 per fault family",
        &[
            "subset",
            "Uplink",
            "Latency",
            "Jitter",
            "Loss",
            "Bandwidth",
            "Load",
            "accuracy",
        ],
    );
    let mut calibration_rows = Vec::new();
    for (hidden, label) in [(false, "known landmarks"), (true, "new landmarks")] {
        let subset: Vec<&EvalSample> = samples.iter().filter(|s| s.near_hidden == hidden).collect();
        // Coarse predictions with the per-service specialised models.
        let probs: Vec<Vec<f32>> = subset
            .par_iter()
            .map(|s| {
                let model = models.specialized.for_service(s.service);
                model.coarse_predict(&s.features, &ctx.full_schema)
            })
            .collect();
        let preds: Vec<usize> = probs
            .iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        let truths: Vec<usize> = subset.iter().map(|s| s.family.index()).collect();
        let cm = ConfusionMatrix::from_predictions(&preds, &truths, ALL_FAMILIES.len());
        let (acc, ci) = accuracy_with_ci(&preds, &truths);
        calibration_rows.push((
            label,
            brier_score(&probs, &truths),
            expected_calibration_error(&probs, &truths, 10),
        ));
        let mut row = vec![label.to_string()];
        for fam in [
            CoarseFamily::UplinkLatency,
            CoarseFamily::LinkLatency,
            CoarseFamily::LinkJitter,
            CoarseFamily::LinkLoss,
            CoarseFamily::LinkBandwidth,
            CoarseFamily::LocalLoad,
        ] {
            row.push(format!("{:.2}", cm.f1(fam.index())));
            json_out(
                "fig7",
                &json!({"subset": label, "family": fam.name(), "f1": cm.f1(fam.index())}),
            );
        }
        row.push(format!("{:.2}±{:.3}", acc, ci));
        json_out(
            "fig7",
            &json!({"subset": label, "accuracy": acc, "ci": ci, "n": subset.len()}),
        );
        table.row(row);
    }
    table.print();
    // Calibration of the confidences Algorithm 1 and w_U consume.
    let mut cal = Table::new(
        "Fig. 7 (extra) — coarse-classifier calibration on faulty samples",
        &["subset", "Brier", "ECE"],
    );
    for (label, brier, ece) in calibration_rows {
        json_out(
            "fig7",
            &json!({"subset": label, "brier": brier, "ece": ece}),
        );
        cal.row(vec![
            label.to_string(),
            format!("{brier:.3}"),
            format!("{ece:.3}"),
        ]);
    }
    cal.print();
}

// ---------------------------------------------------------------------------
// Fig. 8 — client diversity.
// ---------------------------------------------------------------------------

/// Reproduce Fig. 8: Recall@5 for faults near new landmarks as the number
/// of regions with active clients grows from 1 to 10. For each size we
/// average over `combos` sampled region subsets; models are retrained per
/// subset. Reported with the general DiagNet model (specialising per
/// service for every subset would multiply the training cost ×10 without
/// changing the trend).
pub fn fig8(base: &HarnessConfig, combos: usize) {
    let world = diagnet_sim::world::World::new();
    let mut table = Table::new(
        "Fig. 8 — Recall@5 (new landmarks) vs client diversity",
        &[
            "#regions",
            "DiagNet",
            "Random Forest",
            "Naive Bayes",
            "samples",
        ],
    );
    for n_regions in 1..=ALL_REGIONS.len() {
        let mut sums = [0.0f64; 3];
        let mut total_n = 0usize;
        for combo in 0..combos {
            let mut rng = SplitMix64::new(SplitMix64::derive(
                base.seed ^ 0xF1_68,
                (n_regions * 100 + combo) as u64,
            ));
            let regions: Vec<Region> = rng
                .sample_indices(ALL_REGIONS.len(), n_regions)
                .into_iter()
                .map(Region::from_index)
                .collect();
            let mut ds_cfg = DatasetConfig::standard(&world, base.n_scenarios, base.seed);
            ds_cfg.client_regions = regions;
            let ctx = ExperimentContext::create_with_dataset(base.clone(), &ds_cfg);
            // Train the three models on this subset.
            let general = DiagNet::train(&base.model_config, &ctx.split.train, base.seed)
                .expect("fig8 training");
            let forest = ForestBackend::train(
                &base.model_config.forest,
                &ctx.split.train,
                &ctx.train_schema,
                base.seed,
            );
            let bayes = BayesBackend::train(
                &NaiveBayesConfig::default(),
                &ctx.split.train,
                &ctx.train_schema,
            );
            let samples: Vec<EvalSample> = eval_samples(&ctx)
                .into_iter()
                .filter(|s| s.near_hidden)
                .collect();
            if samples.is_empty() {
                continue;
            }
            total_n += samples.len();
            let rows: Vec<Vec<f32>> = samples.iter().map(|s| s.features.clone()).collect();
            let backends: [&dyn Backend; 3] = [&general, &forest, &bayes];
            for (mi, backend) in backends.iter().enumerate() {
                let scored: Vec<(Vec<f32>, usize)> = backend
                    .rank_causes_batch(&rows, &ctx.full_schema)
                    .into_iter()
                    .zip(&samples)
                    .map(|(r, s)| (r.scores, s.truth))
                    .collect();
                sums[mi] += diagnet_eval::recall_at_k(&scored, 5) as f64 * samples.len() as f64;
            }
        }
        let denom = total_n.max(1) as f64;
        let recalls: Vec<f64> = sums.iter().map(|s| s / denom).collect();
        json_out(
            "fig8",
            &json!({"n_regions": n_regions, "diagnet": recalls[0], "forest": recalls[1], "bayes": recalls[2], "n": total_n}),
        );
        table.row(vec![
            n_regions.to_string(),
            pct(recalls[0] as f32),
            pct(recalls[1] as f32),
            pct(recalls[2] as f32),
            total_n.to_string(),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------------
// Fig. 9 — training curves and cost.
// ---------------------------------------------------------------------------

/// Reproduce Fig. 9: loss curves of the general model vs specialised
/// models, epochs to convergence, wall-clock training time and mean
/// inference latency (paper: 32 s / 4 s / 45 ms on a laptop CPU).
pub fn fig9(ctx: &ExperimentContext, models: &TrainedModels) {
    let mut table = Table::new(
        "Fig. 9 — training cost (general vs specialised)",
        &[
            "model",
            "epochs",
            "final train loss",
            "final val loss",
            "train secs",
        ],
    );
    let h = &models.general.history;
    table.row(vec![
        "general (8 services)".into(),
        h.epochs_run.to_string(),
        format!("{:.4}", h.train_loss.last().copied().unwrap_or(f32::NAN)),
        format!("{:.4}", h.val_loss.last().copied().unwrap_or(f32::NAN)),
        format!("{:.1}", models.general_train_secs),
    ]);
    json_out(
        "fig9",
        &json!({
            "model": "general",
            "train_loss": h.train_loss,
            "val_loss": h.val_loss,
            "secs": models.general_train_secs,
        }),
    );
    let mut spec_epochs = Vec::new();
    for (sid, hist) in models.specialized.histories() {
        let name = ctx.world.catalog.get(sid).name;
        spec_epochs.push(hist.epochs_run);
        table.row(vec![
            format!("specialised {name}"),
            hist.epochs_run.to_string(),
            format!("{:.4}", hist.train_loss.last().copied().unwrap_or(f32::NAN)),
            format!("{:.4}", hist.val_loss.last().copied().unwrap_or(f32::NAN)),
            format!("{:.1}", models.specialized_train_secs),
        ]);
        json_out(
            "fig9",
            &json!({
                "model": name,
                "train_loss": hist.train_loss,
                "val_loss": hist.val_loss,
                "secs": models.specialized_train_secs,
            }),
        );
    }
    table.print();

    // Inference latency (paper: 45 ms per root-cause inference).
    let samples = eval_samples(ctx);
    let n = samples.len().min(200);
    if n > 0 {
        let t0 = Instant::now();
        for s in &samples[..n] {
            let model = models.specialized.for_service(s.service);
            std::hint::black_box(model.rank_causes(&s.features, &ctx.full_schema));
        }
        let ms = t0.elapsed().as_secs_f64() * 1000.0 / n as f64;
        println!("\nInference: {ms:.2} ms per sample (paper: 45 ms)");
        let mean_spec_epochs =
            spec_epochs.iter().sum::<usize>() as f64 / spec_epochs.len().max(1) as f64;
        println!(
            "Convergence: general {} epochs, specialised {:.1} epochs on average (paper: ~20 vs <5)",
            models.general.history.epochs_run, mean_spec_epochs
        );
        json_out(
            "fig9",
            &json!({"inference_ms": ms, "general_epochs": models.general.history.epochs_run, "spec_epochs_mean": mean_spec_epochs}),
        );
    }
}

// ---------------------------------------------------------------------------
// Fig. 10 — simultaneous faults.
// ---------------------------------------------------------------------------

/// Reproduce Fig. 10: two simultaneous latency faults (BEAU and GRAV);
/// per relevant-fault bucket, how often each model family predicts the
/// actually relevant cause(s) at rank 1.
pub fn fig10(ctx: &ExperimentContext, models: &TrainedModels) {
    let world = &ctx.world;
    let beau = Fault::new(FaultFamily::ServiceLatency, Region::Beau);
    let grav = Fault::new(FaultFamily::ServiceLatency, Region::Grav);
    let scenario = Scenario::with_faults(vec![beau, grav], 12.0);
    let full = &ctx.full_schema;
    let beau_cause = full
        .index_of(FeatureId::Landmark(Region::Beau, LandmarkMetric::Rtt))
        .unwrap();
    let grav_cause = full
        .index_of(FeatureId::Landmark(Region::Grav, LandmarkMetric::Rtt))
        .unwrap();

    // Generate observations: all clients × all services × several seeds.
    struct Fig10Sample {
        features: Vec<f32>,
        service: diagnet_sim::service::ServiceId,
        relevant: (bool, bool), // (BEAU relevant, GRAV relevant)
    }
    let mut samples = Vec::new();
    for &client in &ALL_REGIONS {
        for sid in world.catalog.all_ids() {
            // Relevant set from the deterministic QoE analysis.
            let nominal = world.nominal_plt(client, sid);
            let both = world.expected_plt(client, sid, &[&beau, &grav]);
            let degraded = both
                > nominal * diagnet_sim::service::QOE_DEGRADATION_FACTOR
                    + diagnet_sim::service::QOE_SLACK_S;
            if !degraded {
                continue;
            }
            let thresh = 0.05 * nominal;
            let beau_rel = both - world.expected_plt(client, sid, &[&grav]) > thresh;
            let grav_rel = both - world.expected_plt(client, sid, &[&beau]) > thresh;
            if !beau_rel && !grav_rel {
                continue;
            }
            for seed in 0..10u64 {
                let obs = world.observe(
                    client,
                    sid,
                    &scenario,
                    SplitMix64::derive(
                        0xF1_0A,
                        seed * 1000 + client.index() as u64 * 16 + sid.0 as u64,
                    ),
                );
                if !obs.label.is_faulty() {
                    continue;
                }
                samples.push(Fig10Sample {
                    features: obs.features,
                    service: sid,
                    relevant: (beau_rel, grav_rel),
                });
            }
        }
    }

    let bucket_name = |rel: (bool, bool)| match rel {
        (true, false) => "BEAU only",
        (false, true) => "GRAV* only",
        (true, true) => "both",
        (false, false) => unreachable!(),
    };
    for (label, use_general) in [("general model", true), ("specialised models", false)] {
        let mut table = Table::new(
            &format!("Fig. 10 — simultaneous latency faults, {label}"),
            &["relevant fault(s)", "top-1 hits relevant cause", "samples"],
        );
        for bucket in [(true, false), (false, true), (true, true)] {
            let subset: Vec<&Fig10Sample> =
                samples.iter().filter(|s| s.relevant == bucket).collect();
            if subset.is_empty() {
                table.row(vec![bucket_name(bucket).into(), "—".into(), "0".into()]);
                continue;
            }
            let hits = subset
                .par_iter()
                .filter(|s| {
                    let model = if use_general {
                        &*models.general
                    } else {
                        models.specialized.for_service(s.service)
                    };
                    let best = model.rank_causes(&s.features, full).best();
                    (bucket.0 && best == beau_cause) || (bucket.1 && best == grav_cause)
                })
                .count();
            let recall = hits as f32 / subset.len() as f32;
            json_out(
                "fig10",
                &json!({"model": label, "bucket": bucket_name(bucket), "recall1": recall, "n": subset.len()}),
            );
            table.row(vec![
                bucket_name(bucket).into(),
                pct(recall),
                subset.len().to_string(),
            ]);
        }
        table.print();
    }
    println!("(paper, specialised: BEAU 76%, GRAV* 28%, both 71%; general markedly worse)");
}

// ---------------------------------------------------------------------------
// Headline — combined Recall@1.
// ---------------------------------------------------------------------------

/// The headline number: combined Recall@1 over all faulty test samples
/// (paper: 73.9 % for DiagNet).
pub fn headline(ctx: &ExperimentContext, models: &TrainedModels) {
    let samples = eval_samples(ctx);
    // Our hidden-landmark protocol sends *every* hidden-region fault to the
    // test set, so hidden faults dominate the raw combined average (≈ 80 %
    // of faulty test samples vs the paper's 23 %). Report both the raw
    // combined recall and one reweighted to the paper's 23/77 composition
    // for a like-for-like headline.
    const PAPER_HIDDEN_SHARE: f32 = 0.23;
    let mut table = Table::new(
        &format!(
            "Headline — combined Recall@1 ({} faulty test samples)",
            samples.len()
        ),
        &[
            "model",
            "R@1 raw",
            "R@1 paper-mix",
            "R@5 raw",
            "R@5 paper-mix",
        ],
    );
    let new: Vec<EvalSample> = samples.iter().filter(|s| s.near_hidden).cloned().collect();
    let known: Vec<EvalSample> = samples.iter().filter(|s| !s.near_hidden).cloned().collect();
    for entry in models.entries_for(&COMPARED_WITH_GENERAL) {
        let raw = recall_curve(&entry.score_all(&samples, &ctx.full_schema), 5);
        let new_curve = recall_curve(&entry.score_all(&new, &ctx.full_schema), 5);
        let known_curve = recall_curve(&entry.score_all(&known, &ctx.full_schema), 5);
        let mix = |k: usize| {
            PAPER_HIDDEN_SHARE * new_curve[k] + (1.0 - PAPER_HIDDEN_SHARE) * known_curve[k]
        };
        json_out(
            "headline",
            &json!({
                "model": entry.label(),
                "recall1_raw": raw[0], "recall5_raw": raw[4],
                "recall1_paper_mix": mix(0), "recall5_paper_mix": mix(4),
                "n": samples.len(),
            }),
        );
        table.row(vec![
            entry.label().to_string(),
            pct(raw[0]),
            pct(mix(0)),
            pct(raw[4]),
            pct(mix(4)),
        ]);
    }
    table.print();
    println!("(paper: DiagNet combined Recall@1 = 73.9%, with 23% of degraded test samples near hidden regions)");
}

// ---------------------------------------------------------------------------
// Params — model sizes (§IV-F).
// ---------------------------------------------------------------------------

/// Parameter-count accounting: the paper reports 215,312 total parameters
/// for the general model, of which 149,648 are frozen during
/// specialisation and 65,664 retrained.
pub fn params(ctx: &ExperimentContext, models: &TrainedModels) {
    let mut table = Table::new(
        "Model parameters (paper: 215,312 general / 65,664 specialised trainable)",
        &["model", "total", "trainable", "frozen"],
    );
    let g = &models.general;
    table.row(vec![
        "general".into(),
        g.num_params().to_string(),
        g.num_trainable_params().to_string(),
        (g.num_params() - g.num_trainable_params()).to_string(),
    ]);
    if let Some((_, spec)) = models.specialized.models.iter().next() {
        table.row(vec![
            "specialised".into(),
            spec.num_params().to_string(),
            spec.num_trainable_params().to_string(),
            (spec.num_params() - spec.num_trainable_params()).to_string(),
        ]);
        json_out(
            "params",
            &json!({
                "general_total": g.num_params(),
                "spec_trainable": spec.num_trainable_params(),
                "spec_frozen": spec.num_params() - spec.num_trainable_params(),
            }),
        );
    }
    table.print();
    let _ = ctx;
}

// ---------------------------------------------------------------------------
// Availability — landmark-fleet degradation (paper §II-D).
// ---------------------------------------------------------------------------

/// Salt separating the availability subsets from other experiments' RNG
/// streams.
const AVAIL_SEED_SALT: u64 = 0xA7A1_1AB1;

/// Landmark-availability experiment: every single-model backend (trained
/// against 7 landmarks) diagnoses test samples as the reachable fleet
/// shrinks from all ten landmarks down to two — without retraining
/// (§II-D: the model "should still provide accurate results even when
/// only a subset of landmarks is available"). Causes at unreachable
/// landmarks cannot be named, so recall is computed over still-observable
/// causes. The landmark subsets are derived from the seed and fleet size
/// only, so every backend sees identical fleets.
pub fn availability(ctx: &ExperimentContext, models: &TrainedModels) {
    let samples = eval_samples(ctx);
    let full = &ctx.full_schema;
    let entries = models.entries_for(&[
        ModelKind::DiagNetGeneral,
        ModelKind::Forest,
        ModelKind::NaiveBayes,
    ]);
    let mut table = Table::new(
        "Availability — Recall vs reachable landmarks (no retraining)",
        &["model", "landmarks", "diagnosable", "R@1", "R@5", "subsets"],
    );
    for entry in &entries {
        let backend = match &entry.scorer {
            Scorer::Single(backend) => backend,
            Scorer::PerService(_) => unreachable!("availability compares single-model backends"),
        };
        for n_landmarks in (2..=ALL_REGIONS.len()).rev() {
            let n_subsets = if n_landmarks == ALL_REGIONS.len() {
                1
            } else {
                3
            };
            let (mut hits1, mut hits5, mut total) = (0usize, 0usize, 0usize);
            for subset_idx in 0..n_subsets {
                let mut rng = SplitMix64::new(SplitMix64::derive(
                    ctx.config.seed ^ AVAIL_SEED_SALT,
                    (n_landmarks * 10 + subset_idx) as u64,
                ));
                let landmarks: Vec<Region> = rng
                    .sample_indices(ALL_REGIONS.len(), n_landmarks)
                    .into_iter()
                    .map(Region::from_index)
                    .collect();
                let schema = diagnet_sim::metrics::FeatureSchema::new(landmarks);
                // Project the still-diagnosable samples, then rank them in
                // one batch through the backend's batched kernel.
                let (rows, truths): (Vec<Vec<f32>>, Vec<usize>) = samples
                    .iter()
                    .filter_map(|s| {
                        let truth = schema.index_of(full.feature(s.truth))?;
                        Some((schema.project_from(full, &s.features, 0.0), truth))
                    })
                    .unzip();
                let ranks: Vec<usize> = backend
                    .rank_causes_batch(&rows, &schema)
                    .into_iter()
                    .zip(&truths)
                    .map(|(ranking, &truth)| {
                        diagnet_eval::ranking::rank_of_truth(&ranking.scores, truth)
                    })
                    .collect();
                total += ranks.len();
                hits1 += ranks.iter().filter(|&&r| r < 1).count();
                hits5 += ranks.iter().filter(|&&r| r < 5).count();
            }
            let r1 = hits1 as f32 / total.max(1) as f32;
            let r5 = hits5 as f32 / total.max(1) as f32;
            json_out(
                "availability",
                &json!({"model": entry.label(), "n_landmarks": n_landmarks, "recall1": r1, "recall5": r5, "n": total}),
            );
            table.row(vec![
                entry.label().to_string(),
                n_landmarks.to_string(),
                total.to_string(),
                pct(r1),
                pct(r5),
                n_subsets.to_string(),
            ]);
        }
    }
    table.print();
    println!("(no model was retrained between fleet sizes — §II-D extensibility)");
}

// ---------------------------------------------------------------------------
// Dataset statistics (paper §IV-A(e)).
// ---------------------------------------------------------------------------

/// Dataset composition table, mirroring the paper's §IV-A(e) statistics
/// (213k nominal / 30k faulty; 23 % of degraded test samples near hidden
/// regions).
pub fn dataset_stats(ctx: &ExperimentContext) {
    let train = &ctx.split.train;
    let test = &ctx.split.test;
    let faulty_test: Vec<_> = test
        .samples
        .iter()
        .filter(|s| s.label.is_faulty())
        .collect();
    let hidden = faulty_test
        .iter()
        .filter(|s| s.label.is_near_hidden_landmark() == Some(true))
        .count();
    let hidden_frac = hidden as f32 / faulty_test.len().max(1) as f32;
    let mut table = Table::new(
        "Dataset composition",
        &["split", "total", "nominal", "faulty"],
    );
    table.row(vec![
        "train".into(),
        train.len().to_string(),
        train.n_nominal().to_string(),
        train.n_faulty().to_string(),
    ]);
    table.row(vec![
        "test".into(),
        test.len().to_string(),
        test.n_nominal().to_string(),
        test.n_faulty().to_string(),
    ]);
    table.print();
    println!(
        "Degraded test samples near hidden regions: {hidden}/{} = {} (paper: 23%)",
        faulty_test.len(),
        pct(hidden_frac)
    );
    json_out(
        "dataset",
        &json!({
            "train": train.len(), "train_faulty": train.n_faulty(),
            "test": test.len(), "test_faulty": test.n_faulty(),
            "hidden_fraction": hidden_frac,
        }),
    );
    // Sanity: no hidden-landmark faults in training (protocol check).
    debug_assert!(train
        .samples
        .iter()
        .all(|s| s.label.is_near_hidden_landmark() != Some(true)));
    let _ = Label::Nominal;
}
