//! # diagnet-bench — the experiment harness
//!
//! Regenerates every table and figure of the DiagNet paper's evaluation
//! section on the simulated testbed. One binary per artefact:
//!
//! | binary     | paper artefact | what it reports |
//! |------------|----------------|-----------------|
//! | `fig5`     | Fig. 5         | Recall@k (k = 1…5) near new vs known landmarks, 3 models |
//! | `fig6`     | Fig. 6         | Recall@5 per fault family and per fault region |
//! | `fig7`     | Fig. 7         | Coarse-classifier F1 per family + accuracy ± CI |
//! | `fig8`     | Fig. 8         | Recall@5 on new landmarks vs client diversity |
//! | `fig9`     | Fig. 9         | Loss curves + wall-clock cost, general vs specialised |
//! | `fig10`    | Fig. 10        | Simultaneous faults near BEAU + GRAV, general vs specialised |
//! | `headline` | §IV-C          | Combined Recall@1 (paper: 73.9 %) |
//! | `params`   | §IV-F          | Parameter counts, general vs specialised |
//! | `all`      | —              | Everything above, sharing one training run |
//!
//! Every binary honours three environment variables:
//!
//! * `DIAGNET_SCENARIOS` — number of fault scenarios (default 400 →
//!   40 000 samples);
//! * `DIAGNET_SEED` — master seed (default 42);
//! * `DIAGNET_CONFIG` — `paper` (default) or `fast`.
//!
//! Results are printed as aligned text tables and appended as JSON lines
//! to `target/experiments/<name>.jsonl` for machine consumption.

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{
    BackendEntry, EvalSample, ExperimentContext, HarnessConfig, ModelKind, Scorer, TrainedModels,
};
pub use report::{json_out, Table};
