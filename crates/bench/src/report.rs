//! Experiment output: aligned text tables on stdout, JSON lines on disk.

use serde_json::Value;
use std::io::Write;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "Table::row: cell count mismatch"
        );
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{:>width$}  ", c, width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory where experiment JSON lines are written.
pub fn experiments_dir() -> PathBuf {
    let dir = std::env::var("DIAGNET_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/experiments"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Append one JSON record to `target/experiments/<name>.jsonl`.
pub fn json_out(name: &str, value: &Value) {
    let path = experiments_dir().join(format!("{name}.jsonl"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{value}");
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(v: f32) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["model", "recall@1"]);
        t.row(vec!["DiagNet".into(), "73.9%".into()]);
        t.row(vec!["RF".into(), "55.0%".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("DiagNet"));
        assert!(s.contains("73.9%"));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.739), "73.9%");
    }

    #[test]
    fn json_out_appends() {
        std::env::set_var(
            "DIAGNET_OUT_DIR",
            std::env::temp_dir().join("diagnet_report_test"),
        );
        json_out("unit", &serde_json::json!({"k": 1}));
        let path = experiments_dir().join("unit.jsonl");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"k\":1"));
        std::fs::remove_file(path).ok();
        std::env::remove_var("DIAGNET_OUT_DIR");
    }
}
