//! Temporal-generalisation experiment: train on the *first* week of a
//! simulated two-week campaign, evaluate on the *second* week.
//!
//! The paper mixed its two weeks of data before splitting (§IV-A(e)); an
//! online deployment cannot — models always score traffic from the
//! future. This experiment quantifies how much the temporal split costs
//! compared to the mixed split, for DiagNet and both baselines.

use diagnet::baselines::{CauseRanker, ForestRanker, NaiveBayesRanker};
use diagnet::model::DiagNet;
use diagnet_bayes::NaiveBayesConfig;
use diagnet_bench::harness::HarnessConfig;
use diagnet_bench::report::{json_out, pct, Table};
use diagnet_sim::dataset::Dataset;
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::region::ALL_REGIONS;
use diagnet_sim::timeline::{Campaign, CampaignConfig};
use diagnet_sim::world::World;
use rayon::prelude::*;
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_env();
    let world = World::new();
    let campaign = Campaign::generate(&CampaignConfig {
        days: 14,
        windows_per_day: 8,
        seed: config.seed,
        ..Default::default()
    });
    eprintln!("[drift] running the two-week campaign…");
    let stream = campaign.run(
        &world,
        &ALL_REGIONS,
        &world.catalog.all_ids(),
        // Probe every 45 simulated minutes → ~45k samples over 14 days.
        0.75,
        config.seed,
    );
    let week1_end = 7.0 * 24.0;
    let mut week1 = Vec::new();
    let mut week2 = Vec::new();
    for (t, sample) in stream {
        if t < week1_end {
            week1.push(sample);
        } else {
            week2.push(sample);
        }
    }
    let schema_full = FeatureSchema::full();
    let train = Dataset {
        schema: schema_full.clone(),
        samples: week1,
    };
    let test = Dataset {
        schema: schema_full.clone(),
        samples: week2,
    };
    eprintln!(
        "[drift] week 1: {} samples ({} faulty); week 2: {} samples ({} faulty)",
        train.len(),
        train.n_faulty(),
        test.len(),
        test.n_faulty()
    );

    // Same hidden-landmark discipline as the main experiments: drop
    // hidden-fault samples from training (they "appear only in testing").
    let train = Dataset {
        schema: train.schema.clone(),
        samples: train
            .samples
            .into_iter()
            .filter(|s| s.label.is_near_hidden_landmark() != Some(true))
            .collect(),
    };

    eprintln!("[drift] training on week 1…");
    let train_schema = FeatureSchema::known();
    let diagnet = DiagNet::train(&config.model_config, &train, config.seed).expect("training");
    let forest = ForestRanker::train(
        &config.model_config.forest,
        &train,
        &train_schema,
        config.seed,
    );
    let bayes = NaiveBayesRanker::train(&NaiveBayesConfig::default(), &train, &train_schema);

    let mut table = Table::new(
        "Drift — trained on week 1, evaluated on week 2",
        &["model", "R@1", "R@5", "MRR", "samples"],
    );
    let rankers: [(&str, &dyn CauseRanker); 3] = [
        ("DiagNet", &diagnet),
        ("Random Forest", &forest),
        ("Naive Bayes", &bayes),
    ];
    let eval: Vec<(&diagnet_sim::dataset::Sample, usize)> = test
        .samples
        .iter()
        .filter_map(|s| Some((s, schema_full.index_of(s.label.cause()?).unwrap())))
        .collect();
    for (name, ranker) in rankers {
        let scored: Vec<(Vec<f32>, usize)> = eval
            .par_iter()
            .map(|(s, truth)| (ranker.rank(&s.features, &schema_full).scores, *truth))
            .collect();
        let r1 = diagnet_eval::recall_at_k(&scored, 1);
        let r5 = diagnet_eval::recall_at_k(&scored, 5);
        let mrr = diagnet_eval::mean_reciprocal_rank(&scored);
        json_out(
            "drift",
            &json!({"model": name, "recall1": r1, "recall5": r5, "mrr": mrr, "n": scored.len()}),
        );
        table.row(vec![
            name.to_string(),
            pct(r1),
            pct(r5),
            format!("{mrr:.3}"),
            scored.len().to_string(),
        ]);
    }
    table.print();
    println!("(week-2 traffic was never seen in any form during training)");
}
