//! Standalone runner for the `fig7` experiment (see diagnet-bench docs).
use diagnet_bench::experiments;
use diagnet_bench::harness::{ExperimentContext, HarnessConfig, TrainedModels};

fn main() {
    let ctx = ExperimentContext::create(HarnessConfig::from_env());
    let models = TrainedModels::train(&ctx);
    experiments::fig7(&ctx, &models);
}
