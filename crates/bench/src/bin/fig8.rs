//! Standalone runner for the Fig. 8 experiment (client diversity).
//!
//! `DIAGNET_COMBOS` sets how many region subsets are averaged per size
//! (default 3). Each subset retrains all three models, so this is the
//! most expensive experiment.
use diagnet_bench::experiments;
use diagnet_bench::harness::HarnessConfig;

fn main() {
    let combos = std::env::var("DIAGNET_COMBOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    experiments::fig8(&HarnessConfig::from_env(), combos);
}
