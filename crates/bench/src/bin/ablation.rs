//! Quality ablations over DiagNet's design choices (DESIGN.md §5):
//!
//! 1. pooling bank Ω: {avg} vs {min,max,avg} vs the full 13-op bank;
//! 2. pipeline stages: raw attention vs + Algorithm 1 weighting vs
//!    + ensemble averaging (the paper notes raw attention alone is weak);
//! 3. filter count f ∈ {8, 24, 64};
//! 4. ensemble weighting: the paper's w_U formula vs fixed 50/50 mixing.
//!
//! Each variant reports Recall@1/@5 separately for faults near new and
//! known landmarks.

use diagnet::config::{DiagNetConfig, OptimizerKind};
use diagnet::ensemble::ensemble_average;
use diagnet::model::{DiagNet, PipelineMode};
use diagnet::perturbation::rank_causes_occlusion;
use diagnet_bench::harness::{eval_samples, EvalSample, ExperimentContext, HarnessConfig};
use diagnet_bench::report::{json_out, pct, Table};
use diagnet_nn::pool::PoolOp;
use diagnet_sim::metrics::FeatureSchema;
use rayon::prelude::*;
use serde_json::json;

/// Recall@k on a slice of eval samples under a scoring closure.
fn recall<F>(samples: &[&EvalSample], k: usize, score: F) -> f32
where
    F: Fn(&EvalSample) -> Vec<f32> + Sync,
{
    let scored: Vec<(Vec<f32>, usize)> = samples.par_iter().map(|s| (score(s), s.truth)).collect();
    diagnet_eval::recall_at_k(&scored, k)
}

fn report_variant<F>(table: &mut Table, name: &str, samples: &[EvalSample], score: F)
where
    F: Fn(&EvalSample) -> Vec<f32> + Sync,
{
    let new: Vec<&EvalSample> = samples.iter().filter(|s| s.near_hidden).collect();
    let known: Vec<&EvalSample> = samples.iter().filter(|s| !s.near_hidden).collect();
    let row = vec![
        name.to_string(),
        pct(recall(&new, 1, &score)),
        pct(recall(&new, 5, &score)),
        pct(recall(&known, 1, &score)),
        pct(recall(&known, 5, &score)),
    ];
    json_out(
        "ablation",
        &json!({
            "variant": name,
            "new_r1": recall(&new, 1, &score), "new_r5": recall(&new, 5, &score),
            "known_r1": recall(&known, 1, &score), "known_r5": recall(&known, 5, &score),
        }),
    );
    table.row(row);
}

fn main() {
    let config = HarnessConfig::from_env();
    let ctx = ExperimentContext::create(config.clone());
    let samples = eval_samples(&ctx);
    let full = FeatureSchema::full();
    let headers = ["variant", "new R@1", "new R@5", "known R@1", "known R@5"];

    // --- 1 & 3: architecture variants (retrain per variant). -------------
    let mut table = Table::new(
        "Ablation — architecture (pooling bank Ω, filters f)",
        &headers,
    );
    let variants: Vec<(String, DiagNetConfig)> = vec![
        (
            "Ω = {avg}".into(),
            DiagNetConfig {
                pool_ops: PoolOp::minimal_bank(),
                ..config.model_config.clone()
            },
        ),
        (
            "Ω = {min,max,avg}".into(),
            DiagNetConfig {
                pool_ops: PoolOp::small_bank(),
                ..config.model_config.clone()
            },
        ),
        ("Ω = full 13 ops".into(), config.model_config.clone()),
        (
            "f = 8".into(),
            DiagNetConfig {
                filters: 8,
                ..config.model_config.clone()
            },
        ),
        (
            "f = 64".into(),
            DiagNetConfig {
                filters: 64,
                ..config.model_config.clone()
            },
        ),
        (
            "raw z-score (no log stabilisation)".into(),
            DiagNetConfig {
                stabilize_features: false,
                ..config.model_config.clone()
            },
        ),
        (
            "optimizer = Adam".into(),
            DiagNetConfig {
                optimizer: OptimizerKind::Adam,
                learning_rate: 0.002,
                ..config.model_config.clone()
            },
        ),
    ];
    for (name, cfg) in variants {
        eprintln!("[ablation] training variant {name}…");
        let model = DiagNet::train(&cfg, &ctx.split.train, config.seed).expect("training");
        report_variant(&mut table, &name, &samples, |s| {
            model.rank_causes(&s.features, &full).scores
        });
    }
    table.print();

    // --- 2 & 4: pipeline variants (one model, different inference). ------
    eprintln!("[ablation] training reference model for pipeline variants…");
    let model =
        DiagNet::train(&config.model_config, &ctx.split.train, config.seed).expect("training");
    let mut table = Table::new("Ablation — inference pipeline", &headers);
    report_variant(&mut table, "attention only (Eq. 1)", &samples, |s| {
        model
            .rank_causes_with(&s.features, &full, PipelineMode::AttentionOnly)
            .scores
    });
    report_variant(
        &mut table,
        "occlusion attention (black-box LIME-style)",
        &samples,
        |s| rank_causes_occlusion(&model, &s.features, &full).scores,
    );
    report_variant(&mut table, "+ Algorithm 1 weighting", &samples, |s| {
        model
            .rank_causes_with(&s.features, &full, PipelineMode::AttentionWeighted)
            .scores
    });
    report_variant(&mut table, "+ ensemble averaging (full)", &samples, |s| {
        model.rank_causes(&s.features, &full).scores
    });
    // Fixed 50/50 mixing instead of the w_U formula.
    let unknown = full.unknown_relative_to(&model.train_schema);
    report_variant(&mut table, "ensemble with fixed w = 0.5", &samples, |s| {
        let gamma = model
            .rank_causes_with(&s.features, &full, PipelineMode::AttentionWeighted)
            .scores;
        let aux = {
            // Recompute the auxiliary scores exactly as the full pipeline does.
            let aux_full = model.auxiliary.scores(&s.features);
            let sum: f32 = aux_full.iter().sum();
            aux_full
                .iter()
                .map(|a| if sum > 0.0 { a / sum } else { *a })
                .collect::<Vec<_>>()
        };
        // Fixed-weight variant: blend at 0.5 regardless of γ̂′ mass on U.
        let half: Vec<f32> = gamma
            .iter()
            .zip(&aux)
            .map(|(&g, &a)| 0.5 * g + 0.5 * a)
            .collect();
        let _ = ensemble_average(&gamma, &aux, &unknown); // reference formula, for contrast
        half
    });
    table.print();
}
