//! Standalone runner for the landmark-availability experiment (§II-D).
use diagnet_bench::experiments;
use diagnet_bench::harness::{ExperimentContext, HarnessConfig, TrainedModels};

fn main() {
    let ctx = ExperimentContext::create(HarnessConfig::from_env());
    let models = TrainedModels::train(&ctx);
    experiments::availability(&ctx, &models);
}
