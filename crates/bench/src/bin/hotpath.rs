//! Hot-path acceptance artefact for ISSUE 2: measures the allocating vs
//! zero-allocation kernels and per-row vs batched end-to-end scoring, then
//! writes `BENCH_hotpath.json` (current directory, overridable with
//! `DIAGNET_HOTPATH_OUT`) plus the usual JSON line under
//! `target/experiments/hotpath.jsonl`. Since ISSUE 4 the record also
//! carries a `stages` object with per-stage pipeline timings gathered
//! from the observability spans (`obs_enabled` says whether the `obs`
//! feature was compiled in; see OBSERVABILITY.md and EXPERIMENTS.md).
//!
//! Honours `DIAGNET_SCENARIOS` / `DIAGNET_SEED` / `DIAGNET_CONFIG` like
//! every other experiment binary; the defaults keep the run under a
//! minute on a laptop. Since ISSUE 7 the record also carries a
//! `thread_scaling` array — the batched scoring pipeline timed under
//! explicit rayon pools (default sweep 1/2/4/all cores, overridable with
//! `--threads 1,2,8`); bitwise determinism guarantees every pool size
//! returns identical rankings, so only wall-clock moves.

use diagnet::backend::{Backend, BayesBackend, ForestBackend};
use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet_bayes::NaiveBayesConfig;
use diagnet_bench::report::{json_out, Table};
use diagnet_nn::linalg::{matmul, matmul_into};
use diagnet_nn::prelude::*;
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::{Dataset, DatasetConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::world::World;
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock seconds per call over `iters` timed calls (after one
/// untimed warm-up call).
fn time_median<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // warm-up
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn random_matrix(rows: usize, cols: usize, rng: &mut SplitMix64) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.normal()).collect())
}

fn main() {
    let n_scenarios: usize = std::env::var("DIAGNET_SCENARIOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let seed: u64 = std::env::var("DIAGNET_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let (config, config_name) = match std::env::var("DIAGNET_CONFIG").as_deref() {
        Ok("fast") => (DiagNetConfig::fast(), "fast"),
        _ => (DiagNetConfig::paper(), "paper"),
    };

    let world = World::new();
    let mut cfg = DatasetConfig::small(&world, seed);
    cfg.n_scenarios = n_scenarios;
    let ds = Dataset::generate(&world, &cfg).expect("generate");
    let split = ds.split(0.8, seed);
    eprintln!(
        "hotpath: training {config_name} model on {} samples …",
        split.train.len()
    );
    let model = DiagNet::train(&config, &split.train, seed).unwrap();
    let schema = FeatureSchema::full();
    let rows: Vec<Vec<f32>> = split
        .test
        .samples
        .iter()
        .take(64)
        .map(|s| s.features.clone())
        .collect();
    let batch = rows.len();

    // 1. Kernel level: the paper network's widest GEMM, allocating vs
    //    writing into a reused buffer.
    let mut rng = SplitMix64::new(seed ^ 0x5bd1);
    let a = random_matrix(batch, 317, &mut rng);
    let b = random_matrix(317, 512, &mut rng);
    let mut out = Matrix::zeros(batch, 512);
    let t_mm_alloc = time_median(60, || {
        black_box(matmul(&a, &b));
    });
    let t_mm_into = time_median(60, || {
        matmul_into(&a, &b, &mut out);
        black_box(out.get(0, 0));
    });

    // 2. Network level: allocating forward vs warm workspace, batch 64.
    let x = model.normalizer.apply_matrix(&schema, &rows);
    let mut ws = ForwardWorkspace::new(&model.network);
    let t_fwd_alloc = time_median(40, || {
        black_box(model.network.forward(&x).get(0, 0));
    });
    let t_fwd_ws = time_median(40, || {
        black_box(model.network.forward_ws(&x, &mut ws).get(0, 0));
    });

    // 3. Inference: the seed per-row path (normalize + `Matrix::from_row`
    //    + a 1-row forward per episode) vs one batched GEMM per layer.
    let t_inf_per_row = time_median(20, || {
        black_box(
            rows.iter()
                .map(|r| model.coarse_predict(r, &schema))
                .collect::<Vec<_>>(),
        );
    });
    let t_inf_batched = time_median(20, || {
        black_box(model.predict_batch(&rows, &schema).get(0, 0));
    });

    // 4. End to end: one rank_causes call per episode vs the batched
    //    pipeline (one forward GEMM + one whole-batch attention backward).
    let t_per_row = time_median(12, || {
        black_box(
            rows.iter()
                .map(|r| model.rank_causes(r, &schema))
                .collect::<Vec<_>>(),
        );
    });
    let t_batched = time_median(12, || {
        black_box(model.score_batch(&rows, &schema));
    });

    // 5. Baseline backends behind the same `Backend` trait: per-row vs
    //    batched ranking for the forest and naive-Bayes models.
    eprintln!("hotpath: training baseline backends …");
    let forest = ForestBackend::train(&config.forest, &split.train, &FeatureSchema::known(), seed);
    let bayes = BayesBackend::train(
        &NaiveBayesConfig::default(),
        &split.train,
        &FeatureSchema::known(),
    );
    let t_forest_per_row = time_median(12, || {
        black_box(
            rows.iter()
                .map(|r| Backend::rank_causes(&forest, r, &schema))
                .collect::<Vec<_>>(),
        );
    });
    let t_forest_batch = time_median(12, || {
        black_box(forest.rank_causes_batch(&rows, &schema));
    });
    let t_bayes_per_row = time_median(12, || {
        black_box(
            rows.iter()
                .map(|r| Backend::rank_causes(&bayes, r, &schema))
                .collect::<Vec<_>>(),
        );
    });
    let t_bayes_batch = time_median(12, || {
        black_box(bayes.rank_causes_batch(&rows, &schema));
    });

    // 6. Per-stage pipeline timings from the tracing spans the batched
    //    runs above just recorded in the global metrics registry (see
    //    OBSERVABILITY.md). Quantiles are interpolated from histogram
    //    buckets, so they are bucket-resolution estimates, not exact
    //    order statistics. Empty when built with --no-default-features.
    let us = |s: f64| s * 1e6;
    let obs_enabled = cfg!(feature = "obs");
    let span_snapshot = diagnet_obs::global().snapshot();

    // 7. Thread scaling: the batched scoring pipeline under explicit rayon
    //    pools (default 1/2/4/all cores, `--threads 1,2,8` overrides). Runs
    //    after the span snapshot above so the stage quantiles stay pinned
    //    to the default-pool measurements; the per-thread workspaces make
    //    each pool size allocation-free after its own warm-up call.
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let args: Vec<String> = std::env::args().collect();
    let mut sweep: Vec<usize> = match args.iter().position(|a| a == "--threads") {
        Some(i) => args
            .get(i + 1)
            .map(|list| {
                list.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect()
            })
            .unwrap_or_default(),
        None => [1, 2, 4, available]
            .into_iter()
            .filter(|&n| n <= available)
            .collect(),
    };
    sweep.retain(|&n| n >= 1);
    sweep.sort_unstable();
    sweep.dedup();
    eprintln!("hotpath: thread-scaling sweep over {sweep:?} …");
    let mut thread_scaling: Vec<(usize, f64)> = Vec::new();
    for &n in &sweep {
        match rayon::ThreadPoolBuilder::new().num_threads(n).build() {
            Ok(pool) => {
                let t = pool.install(|| {
                    time_median(12, || {
                        black_box(model.score_batch(&rows, &schema));
                    })
                });
                thread_scaling.push((n, t));
            }
            Err(e) => eprintln!("hotpath: skipping {n}-thread pool: {e}"),
        }
    }
    let t_scale_1 = thread_scaling
        .iter()
        .find(|(n, _)| *n == 1)
        .map(|&(_, t)| t)
        .unwrap_or(t_batched);
    let stage_json = |stage: &str| -> serde_json::Value {
        match span_snapshot.histogram(diagnet_obs::span::SPAN_HISTOGRAM, &[("span", stage)]) {
            Some(h) => serde_json::json!({
                "count": h.count,
                "p50_us": us(h.quantile(0.5)),
                "p95_us": us(h.quantile(0.95)),
                "p99_us": us(h.quantile(0.99)),
            }),
            None => serde_json::json!(null),
        }
    };
    if obs_enabled {
        let mut spans = Table::new(
            "pipeline stage spans (bucket-interpolated µs)",
            &["span", "count", "p50", "p95", "p99"],
        );
        for stage in [
            "core.rank_causes_batch",
            "core.normalize",
            "core.forward",
            "core.attention_backward",
            "core.fine_rank",
        ] {
            if let Some(h) =
                span_snapshot.histogram(diagnet_obs::span::SPAN_HISTOGRAM, &[("span", stage)])
            {
                spans.row(vec![
                    stage.into(),
                    h.count.to_string(),
                    format!("{:.1}", us(h.quantile(0.5))),
                    format!("{:.1}", us(h.quantile(0.95))),
                    format!("{:.1}", us(h.quantile(0.99))),
                ]);
            }
        }
        spans.print();
    }

    let mut table = Table::new(
        "hot path: allocating vs zero-allocation (median µs/call)",
        &["stage", "before", "after", "speedup"],
    );
    for (stage, before, after) in [
        ("matmul 64×317·317×512", t_mm_alloc, t_mm_into),
        ("forward batch=64", t_fwd_alloc, t_fwd_ws),
        ("inference 64 episodes", t_inf_per_row, t_inf_batched),
        ("scoring 64 episodes", t_per_row, t_batched),
        ("forest 64 episodes", t_forest_per_row, t_forest_batch),
        ("bayes 64 episodes", t_bayes_per_row, t_bayes_batch),
    ] {
        table.row(vec![
            stage.into(),
            format!("{:.1}", us(before)),
            format!("{:.1}", us(after)),
            format!("{:.2}×", before / after),
        ]);
    }
    table.print();

    let mut scaling_table = Table::new(
        "thread scaling: score_batch 64 episodes (median µs/call)",
        &["threads", "score_batch", "speedup vs 1"],
    );
    for &(n, t) in &thread_scaling {
        scaling_table.row(vec![
            n.to_string(),
            format!("{:.1}", us(t)),
            format!("{:.2}×", t_scale_1 / t),
        ]);
    }
    scaling_table.print();

    let stages = serde_json::json!({
        "core.rank_causes_batch": stage_json("core.rank_causes_batch"),
        "core.normalize": stage_json("core.normalize"),
        "core.forward": stage_json("core.forward"),
        "core.attention_backward": stage_json("core.attention_backward"),
        "core.fine_rank": stage_json("core.fine_rank"),
    });
    let record = serde_json::json!({
        "experiment": "hotpath",
        "config": config_name,
        "n_scenarios": n_scenarios,
        "seed": seed,
        "batch": batch,
        "threads": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "matmul_alloc_us": us(t_mm_alloc),
        "matmul_into_us": us(t_mm_into),
        "matmul_speedup": t_mm_alloc / t_mm_into,
        "forward_alloc_us": us(t_fwd_alloc),
        "forward_ws_us": us(t_fwd_ws),
        "forward_speedup": t_fwd_alloc / t_fwd_ws,
        "infer_per_row_us": us(t_inf_per_row),
        "infer_batch_us": us(t_inf_batched),
        "infer_batch_speedup": t_inf_per_row / t_inf_batched,
        "score_per_row_us": us(t_per_row),
        "score_batch_us": us(t_batched),
        "score_batch_speedup": t_per_row / t_batched,
        "forest_per_row_us": us(t_forest_per_row),
        "forest_batch_us": us(t_forest_batch),
        "forest_batch_speedup": t_forest_per_row / t_forest_batch,
        "bayes_per_row_us": us(t_bayes_per_row),
        "bayes_batch_us": us(t_bayes_batch),
        "bayes_batch_speedup": t_bayes_per_row / t_bayes_batch,
        "obs_enabled": obs_enabled,
        "stages": stages,
        "thread_scaling": thread_scaling
            .iter()
            .map(|&(n, t)| {
                serde_json::json!({
                    "threads": n,
                    "score_batch_us": us(t),
                    "speedup_vs_1": t_scale_1 / t,
                })
            })
            .collect::<Vec<_>>(),
    });
    json_out("hotpath", &record);
    let out_path =
        std::env::var("DIAGNET_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".to_string());
    std::fs::write(&out_path, serde_json::to_string_pretty(&record).unwrap())
        .unwrap_or_else(|e| eprintln!("hotpath: could not write {out_path}: {e}"));
    eprintln!("hotpath: wrote {out_path}");
}
