//! Online (prequential) evaluation of the analysis service: replay a
//! simulated two-week campaign, diagnosing each failure with whatever
//! model generation is live at that moment, then ingesting the sample.
//!
//! Shows the deployment-time learning curve the paper's offline split
//! cannot: how quickly diagnosis quality ramps up as probes accumulate.
//!
//! Extra knobs: `DIAGNET_RETRAIN_EVERY` (default 5000 submissions).

use diagnet_bench::harness::HarnessConfig;
use diagnet_bench::report::{json_out, pct, Table};
use diagnet_platform::{replay, AnalysisService, ServiceConfig};
use diagnet_sim::metrics::FeatureSchema;
use diagnet_sim::region::ALL_REGIONS;
use diagnet_sim::timeline::{Campaign, CampaignConfig};
use diagnet_sim::world::World;
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_env();
    let retrain_every: usize = std::env::var("DIAGNET_RETRAIN_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5000);
    let world = World::new();
    let schema = FeatureSchema::full();
    let service = AnalysisService::new(
        ServiceConfig {
            backend: diagnet::backend::BackendKind::DiagNet,
            model: config.model_config.clone(),
            buffer_capacity: 500_000,
            general_services: world.catalog.general_ids(),
            min_service_samples: 50,
            auto_retrain_every: None, // replay drives retraining itself
            seed: config.seed,
            ..ServiceConfig::default()
        },
        schema.clone(),
    );
    let campaign = Campaign::generate(&CampaignConfig {
        days: 14,
        windows_per_day: 8,
        seed: config.seed,
        ..Default::default()
    });
    eprintln!("[online] running the campaign…");
    let stream = campaign.run(
        &world,
        &ALL_REGIONS,
        &world.catalog.all_ids(),
        1.0,
        config.seed,
    );
    eprintln!(
        "[online] replaying {} samples (retrain every {retrain_every})…",
        stream.len()
    );
    let stats = replay(&service, &stream, &schema, retrain_every);

    let mut table = Table::new(
        "Online — prequential diagnosis quality per model generation",
        &["generation", "live until (h)", "diagnosed", "R@1", "R@5"],
    );
    for s in &stats {
        json_out(
            "online",
            &json!({
                "generation": s.generation,
                "until_h": s.until_h,
                "n": s.n_diagnosed,
                "recall1": s.recall1,
                "recall5": s.recall5,
            }),
        );
        table.row(vec![
            format!("v{}", s.generation),
            format!("{:.0}", s.until_h),
            s.n_diagnosed.to_string(),
            pct(s.recall1),
            pct(s.recall5),
        ]);
    }
    table.print();
    println!("(each failure was diagnosed before its sample was ingested — test-then-train)");
}
