//! Run every experiment, sharing one dataset and one training run for the
//! figures that allow it (Figs. 5, 6, 7, 9, 10, headline, params); Fig. 8
//! retrains per client-diversity subset by design.
use diagnet_bench::experiments;
use diagnet_bench::harness::{ExperimentContext, HarnessConfig, TrainedModels};

fn main() {
    let config = HarnessConfig::from_env();
    let ctx = ExperimentContext::create(config.clone());
    experiments::dataset_stats(&ctx);
    let models = TrainedModels::train(&ctx);
    experiments::fig5(&ctx, &models);
    experiments::fig6(&ctx, &models);
    experiments::fig7(&ctx, &models);
    experiments::fig9(&ctx, &models);
    experiments::fig10(&ctx, &models);
    experiments::headline(&ctx, &models);
    experiments::params(&ctx, &models);
    experiments::availability(&ctx, &models);
    let combos = std::env::var("DIAGNET_COMBOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    experiments::fig8(&config, combos);
}
