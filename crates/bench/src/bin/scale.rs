//! Scale acceptance artefact for the streaming data plane (ISSUE 8):
//! drives the chunk-oriented generation + training pipeline at
//! million-probe / hundred-landmark scale and writes `BENCH_scale.json`
//! (current directory, overridable with `DIAGNET_SCALE_OUT`) plus the
//! usual JSON line under `target/experiments/scale.jsonl`.
//!
//! Three timed phases, each with its own peak-RSS reading (the kernel's
//! `VmHWM` high-water mark, reset between phases via
//! `/proc/self/clear_refs`; see EXPERIMENTS.md for the methodology):
//!
//! 1. **generate** — drain a [`DatasetStream`] of `DIAGNET_SCALE_PROBES`
//!    simulator probes chunk by chunk, discarding each chunk: pure
//!    bounded-memory generation throughput (probes/sec).
//! 2. **train ¼ scale** — stream a quarter of the probes, widened to
//!    `DIAGNET_SCALE_LANDMARKS` landmark blocks, through
//!    `Trainer::fit_streaming` with a bounded shuffle window.
//! 3. **train full scale** — the same at full scale (rows/sec trained).
//!
//! The flat-RSS evidence is the ratio of phase-3 to phase-2 peak RSS:
//! a streaming pipeline's memory is bounded by chunk + window size, so
//! quadrupling the row count must not grow the peak. The record also
//! carries `materialized_mb`, what the full widened design matrix would
//! occupy if it were built in memory, for contrast.
//!
//! Scale knobs (env): `DIAGNET_SCALE_PROBES` (default 1_000_000, rounded
//! down to whole scenarios), `DIAGNET_SCALE_LANDMARKS` (default 100),
//! `DIAGNET_SCALE_CHUNK` (default 8192), `DIAGNET_SCALE_WINDOW`
//! (default 16384), plus the usual `DIAGNET_SEED`.

use diagnet::config::DiagNetConfig;
use diagnet::model::DiagNet;
use diagnet_bench::report::{json_out, Table};
use diagnet_nn::prelude::*;
use diagnet_rng::SplitMix64;
use diagnet_sim::dataset::DatasetConfig;
use diagnet_sim::metrics::{K_LANDMARK_METRICS, N_LOCAL_METRICS};
use diagnet_sim::stream::{DatasetStream, SampleSource};
use diagnet_sim::world::World;
use std::time::Instant;

/// Per-kind count: landmark metric kinds plus local metric kinds.
const N_KINDS: usize = K_LANDMARK_METRICS + N_LOCAL_METRICS;

/// Peak resident set size (`VmHWM`) in bytes, if the platform exposes it.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Reset the peak-RSS high-water mark to the current RSS so each phase
/// gets its own reading. Best-effort: a no-op where unsupported.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

fn mb(bytes: Option<u64>) -> f64 {
    bytes.map(|b| b as f64 / (1024.0 * 1024.0)).unwrap_or(-1.0)
}

/// Per-metric-kind standardisation statistics fitted on a sample prefix.
#[derive(Clone, Copy)]
struct KindStats {
    mean: [f32; N_KINDS],
    inv_std: [f32; N_KINDS],
}

impl KindStats {
    /// Fit mean/std per metric kind over the rows of one raw chunk
    /// (full-schema layout: 10 landmark blocks of 5 metrics + 5 local).
    fn fit(rows: &[diagnet_sim::dataset::Sample], n_full_landmarks: usize) -> KindStats {
        let mut sum = [0.0f64; N_KINDS];
        let mut sum_sq = [0.0f64; N_KINDS];
        let mut count = [0usize; N_KINDS];
        for s in rows {
            for (idx, &v) in s.features.iter().enumerate() {
                let kind = if idx < n_full_landmarks * K_LANDMARK_METRICS {
                    idx % K_LANDMARK_METRICS
                } else {
                    K_LANDMARK_METRICS + (idx - n_full_landmarks * K_LANDMARK_METRICS)
                };
                sum[kind] += f64::from(v);
                sum_sq[kind] += f64::from(v) * f64::from(v);
                count[kind] += 1;
            }
        }
        let mut stats = KindStats {
            mean: [0.0; N_KINDS],
            inv_std: [1.0; N_KINDS],
        };
        for k in 0..N_KINDS {
            if count[k] == 0 {
                continue;
            }
            let n = count[k] as f64;
            let mean = sum[k] / n;
            let var = (sum_sq[k] / n - mean * mean).max(1e-12);
            stats.mean[k] = mean as f32;
            stats.inv_std[k] = (1.0 / var.sqrt()) as f32;
        }
        stats
    }
}

/// A [`BatchSource`] that widens each simulator sample from the full
/// schema's landmark count to `n_landmarks` blocks: blocks past the real
/// ones are deterministic jittered copies (`block l` mirrors
/// `block l % 10`), standing in for the opportunistic landmark fleets the
/// paper targets. Rows are standardised per metric kind; memory is one
/// simulator chunk regardless of pass length.
struct WidenedSource<'a> {
    stream: DatasetStream<'a>,
    n_landmarks: usize,
    n_full_landmarks: usize,
    stats: KindStats,
    seed: u64,
    chunk: Vec<diagnet_sim::dataset::Sample>,
    chunk_start: usize,
    cursor: usize,
}

impl<'a> WidenedSource<'a> {
    fn new(stream: DatasetStream<'a>, n_landmarks: usize, stats: KindStats, seed: u64) -> Self {
        let n_full_landmarks = stream.schema().n_landmarks();
        WidenedSource {
            stream,
            n_landmarks,
            n_full_landmarks,
            stats,
            seed,
            chunk: Vec::new(),
            chunk_start: 0,
            cursor: 0,
        }
    }

    /// Append one widened, standardised row.
    fn push_row(&mut self, row_index: usize, sample_features: &[f32], x: &mut Vec<f32>) {
        let land = self.n_full_landmarks * K_LANDMARK_METRICS;
        let mut rng = SplitMix64::new(SplitMix64::derive(
            self.seed ^ 0x71DE_CAFE,
            row_index as u64,
        ));
        for l in 0..self.n_landmarks {
            let src = (l % self.n_full_landmarks) * K_LANDMARK_METRICS;
            let jitter = if l < self.n_full_landmarks {
                0.0
            } else {
                rng.normal() * 0.05
            };
            for j in 0..K_LANDMARK_METRICS {
                let v = sample_features.get(src + j).copied().unwrap_or(0.0) * (1.0 + jitter);
                x.push((v - self.stats.mean[j]) * self.stats.inv_std[j]);
            }
        }
        for j in 0..N_LOCAL_METRICS {
            let k = K_LANDMARK_METRICS + j;
            let v = sample_features.get(land + j).copied().unwrap_or(0.0);
            x.push((v - self.stats.mean[k]) * self.stats.inv_std[k]);
        }
    }
}

impl BatchSource for WidenedSource<'_> {
    fn num_rows(&self) -> usize {
        self.stream.n_samples()
    }

    fn width(&self) -> usize {
        self.n_landmarks * K_LANDMARK_METRICS + N_LOCAL_METRICS
    }

    fn reset(&mut self) {
        self.stream.reset();
        self.chunk.clear();
        self.chunk_start = 0;
        self.cursor = 0;
    }

    fn next_rows(&mut self, limit: usize, x: &mut Vec<f32>, y: &mut Vec<usize>) -> usize {
        if self.cursor >= self.chunk.len() {
            let Some(next) = SampleSource::next_chunk(&mut self.stream) else {
                return 0;
            };
            self.chunk_start = next.start;
            self.chunk = next.samples;
            self.cursor = 0;
        }
        let take = limit.min(self.chunk.len() - self.cursor);
        for i in 0..take {
            let pos = self.cursor + i;
            let features = std::mem::take(&mut self.chunk[pos].features);
            self.push_row(self.chunk_start + pos, &features, x);
            self.chunk[pos].features = features;
            y.push(self.chunk[pos].label.family_index());
        }
        self.cursor += take;
        take
    }
}

/// Stream-train a fresh network over `n_scenarios` widened scenarios for
/// one epoch; returns (rows trained, seconds, final train loss).
fn train_at_scale(
    world: &World,
    n_scenarios: usize,
    n_landmarks: usize,
    chunk_size: usize,
    window: usize,
    stats: KindStats,
    config: &DiagNetConfig,
    seed: u64,
) -> (usize, f64, f32) {
    let gen_cfg = DatasetConfig::standard(world, n_scenarios, seed);
    let stream = DatasetStream::new(world, &gen_cfg, chunk_size).expect("stream");
    let mut source = WidenedSource::new(stream, n_landmarks, stats, seed);
    let n_rows = source.num_rows();
    let mut net = DiagNet::build_network(config, seed);
    let train_cfg = TrainConfig {
        epochs: 1,
        batch_size: 256,
        patience: None,
        shuffle: true,
        restore_best: false,
        class_weights: None,
        shuffle_window: Some(window),
    };
    let optimizer = SgdNesterov::new(config.learning_rate, config.momentum, config.decay);
    let mut trainer = Trainer::new(train_cfg, optimizer);
    let t0 = Instant::now();
    let history = trainer
        .fit_streaming(&mut net, &mut source, None, seed)
        .expect("fit_streaming");
    let secs = t0.elapsed().as_secs_f64();
    let loss = history.train_loss.last().copied().unwrap_or(f32::NAN);
    (n_rows, secs, loss)
}

fn main() {
    let env_usize = |name: &str, default: usize| -> usize {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let seed: u64 = std::env::var("DIAGNET_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let probes_target = env_usize("DIAGNET_SCALE_PROBES", 1_000_000);
    let n_landmarks = env_usize("DIAGNET_SCALE_LANDMARKS", 100).max(1);
    let chunk_size = env_usize("DIAGNET_SCALE_CHUNK", 8192).max(1);
    let window = env_usize("DIAGNET_SCALE_WINDOW", 16_384).max(256);
    let config = DiagNetConfig::fast();

    let world = World::new();
    let probes_per_scenario = DatasetConfig::standard(&world, 1, seed).n_samples().max(1);
    let n_scenarios = (probes_target / probes_per_scenario).max(4);
    let n_probes = n_scenarios * probes_per_scenario;
    let width = n_landmarks * K_LANDMARK_METRICS + N_LOCAL_METRICS;
    eprintln!(
        "scale: {n_probes} probes ({n_scenarios} scenarios), {n_landmarks} landmarks \
         (row width {width}), chunk {chunk_size}, window {window}"
    );

    // Standardisation stats from the first chunk (deterministic prefix).
    let gen_cfg = DatasetConfig::standard(&world, n_scenarios, seed);
    let mut prefix = DatasetStream::new(&world, &gen_cfg, chunk_size).expect("stream");
    let first = SampleSource::next_chunk(&mut prefix).expect("at least one chunk");
    let stats = KindStats::fit(&first.samples, world.schema.n_landmarks());
    drop(first);

    // Phase 1: chunked generation throughput, chunks discarded as they
    // arrive — memory stays one chunk deep.
    reset_peak_rss();
    let stream = DatasetStream::new(&world, &gen_cfg, chunk_size).expect("stream");
    let t0 = Instant::now();
    let mut generated = 0usize;
    for chunk in stream {
        generated += chunk.len();
    }
    let gen_secs = t0.elapsed().as_secs_f64();
    let gen_rss = peak_rss_bytes();
    let probes_per_sec = generated as f64 / gen_secs;
    eprintln!(
        "scale: generated {generated} probes in {gen_secs:.1}s \
         ({probes_per_sec:.0}/s, peak RSS {:.0} MB)",
        mb(gen_rss)
    );

    // Phase 2: streaming training at quarter scale.
    reset_peak_rss();
    let (q_rows, q_secs, q_loss) = train_at_scale(
        &world,
        (n_scenarios / 4).max(1),
        n_landmarks,
        chunk_size,
        window,
        stats,
        &config,
        seed,
    );
    let q_rss = peak_rss_bytes();
    eprintln!(
        "scale: trained {q_rows} rows (¼ scale) in {q_secs:.1}s \
         (loss {q_loss:.3}, peak RSS {:.0} MB)",
        mb(q_rss)
    );

    // Phase 3: streaming training at full scale. Flat RSS means this peak
    // matches phase 2's despite 4× the rows.
    reset_peak_rss();
    let (rows, train_secs, loss) = train_at_scale(
        &world,
        n_scenarios,
        n_landmarks,
        chunk_size,
        window,
        stats,
        &config,
        seed,
    );
    let full_rss = peak_rss_bytes();
    let rows_per_sec = rows as f64 / train_secs;
    eprintln!(
        "scale: trained {rows} rows (full scale) in {train_secs:.1}s \
         ({rows_per_sec:.0}/s, loss {loss:.3}, peak RSS {:.0} MB)",
        mb(full_rss)
    );

    let rss_ratio = match (full_rss, q_rss) {
        (Some(f), Some(q)) if q > 0 => f as f64 / q as f64,
        _ => -1.0,
    };
    let materialized_mb =
        (rows as f64 * width as f64 * std::mem::size_of::<f32>() as f64) / (1024.0 * 1024.0);

    let mut table = Table::new(
        "streaming data plane at scale",
        &["phase", "rows", "seconds", "rate/s", "peak RSS MB"],
    );
    table.row(vec![
        "generate".into(),
        generated.to_string(),
        format!("{gen_secs:.1}"),
        format!("{probes_per_sec:.0}"),
        format!("{:.0}", mb(gen_rss)),
    ]);
    table.row(vec![
        "train ¼".into(),
        q_rows.to_string(),
        format!("{q_secs:.1}"),
        format!("{:.0}", q_rows as f64 / q_secs),
        format!("{:.0}", mb(q_rss)),
    ]);
    table.row(vec![
        "train full".into(),
        rows.to_string(),
        format!("{train_secs:.1}"),
        format!("{rows_per_sec:.0}"),
        format!("{:.0}", mb(full_rss)),
    ]);
    table.print();
    println!(
        "\nfull/quarter peak-RSS ratio: {rss_ratio:.2} \
         (materialising the design matrix would need {materialized_mb:.0} MB)"
    );

    let quarter = serde_json::json!({
        "train_rows": q_rows,
        "train_seconds": q_secs,
        "train_final_loss": q_loss,
        "peak_rss_mb": mb(q_rss),
    });
    let record = serde_json::json!({
        "experiment": "scale",
        "seed": seed,
        "n_probes": generated,
        "n_landmarks": n_landmarks,
        "row_width": width,
        "chunk_size": chunk_size,
        "shuffle_window": window,
        "gen_seconds": gen_secs,
        "probes_per_sec": probes_per_sec,
        "gen_peak_rss_mb": mb(gen_rss),
        "train_rows": rows,
        "train_seconds": train_secs,
        "rows_per_sec": rows_per_sec,
        "train_final_loss": loss,
        "quarter_scale": quarter,
        "full_peak_rss_mb": mb(full_rss),
        "rss_ratio_full_vs_quarter": rss_ratio,
        "materialized_mb": materialized_mb,
        "obs_enabled": cfg!(feature = "obs"),
    });
    json_out("scale", &record);
    let out_path =
        std::env::var("DIAGNET_SCALE_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    std::fs::write(&out_path, serde_json::to_string_pretty(&record).unwrap())
        .unwrap_or_else(|e| eprintln!("scale: could not write {out_path}: {e}"));
    eprintln!("scale: wrote {out_path}");
}
