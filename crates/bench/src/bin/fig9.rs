//! Standalone runner for the Fig. 9 experiment (training cost curves).
use diagnet_bench::experiments;
use diagnet_bench::harness::{ExperimentContext, HarnessConfig, TrainedModels};

fn main() {
    let ctx = ExperimentContext::create(HarnessConfig::from_env());
    let models = TrainedModels::train(&ctx);
    experiments::fig9(&ctx, &models);
}
