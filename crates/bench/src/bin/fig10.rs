//! Standalone runner for the Fig. 10 experiment (simultaneous faults).
use diagnet_bench::experiments;
use diagnet_bench::harness::{ExperimentContext, HarnessConfig, TrainedModels};

fn main() {
    let ctx = ExperimentContext::create(HarnessConfig::from_env());
    let models = TrainedModels::train(&ctx);
    experiments::fig10(&ctx, &models);
}
