//! Feature-importance comparison: the auxiliary forest's Gini-style
//! importance (the classical NetPoirot-era explanation) vs DiagNet's
//! gradient attention averaged over faulty samples.
//!
//! High agreement on *known* features validates that the two mechanisms
//! see the same structure; disagreement on hidden-landmark features is
//! expected — the forest literally cannot split on features that were
//! zeroed during its training, which is why the ensemble needs attention.

use diagnet::attention::attention_scores;
use diagnet::model::DiagNet;
use diagnet_bench::harness::{eval_samples, ExperimentContext, HarnessConfig};
use diagnet_bench::report::{json_out, Table};
use diagnet_sim::metrics::FeatureSchema;
use rayon::prelude::*;
use serde_json::json;

fn main() {
    let config = HarnessConfig::from_env();
    let ctx = ExperimentContext::create(config.clone());
    eprintln!("[importance] training general model…");
    let model =
        DiagNet::train(&config.model_config, &ctx.split.train, config.seed).expect("training");
    let full = FeatureSchema::full();
    let samples = eval_samples(&ctx);

    // Forest importance over the full cause space.
    let forest_importance = model
        .auxiliary
        .forest()
        .feature_importance(full.n_features());

    // Mean gradient attention over faulty test samples. Per-sample scores in
    // parallel, deterministic serial accumulation (float sums stay
    // reproducible regardless of how the work was split).
    let per_sample: Vec<Vec<f32>> = samples
        .par_iter()
        .map(|s| attention_scores(&model.network, &model.normalizer.apply(&full, &s.features)))
        .collect();
    let mut attention_sums = vec![0.0f32; full.n_features()];
    for scores in &per_sample {
        for (x, y) in attention_sums.iter_mut().zip(scores) {
            *x += y;
        }
    }
    let mean_attention: Vec<f32> = attention_sums
        .iter()
        .map(|v| v / samples.len().max(1) as f32)
        .collect();

    // Agreement restricted to features the forest could actually learn.
    let known: Vec<usize> = (0..full.n_features())
        .filter(|&j| ctx.train_schema.index_of(full.feature(j)).is_some())
        .collect();
    let fk: Vec<f32> = known.iter().map(|&j| forest_importance[j]).collect();
    let ak: Vec<f32> = known.iter().map(|&j| mean_attention[j]).collect();
    let rho_known = diagnet_eval::spearman_rho(&fk, &ak);
    let rho_all = diagnet_eval::spearman_rho(&forest_importance, &mean_attention);

    let top = |scores: &[f32]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        idx.truncate(8);
        idx
    };
    let mut table = Table::new(
        "Feature importance — forest (Gini splits) vs DiagNet attention",
        &["rank", "forest top features", "attention top features"],
    );
    let ft = top(&forest_importance);
    let at = top(&mean_attention);
    for i in 0..8 {
        table.row(vec![
            (i + 1).to_string(),
            format!(
                "{} ({:.3})",
                full.feature(ft[i]).name(),
                forest_importance[ft[i]]
            ),
            format!(
                "{} ({:.3})",
                full.feature(at[i]).name(),
                mean_attention[at[i]]
            ),
        ]);
    }
    table.print();
    println!("Spearman ρ (known features): {rho_known:.3}; ρ (all 55): {rho_all:.3}");
    let hidden_attention: f32 = full
        .unknown_relative_to(&ctx.train_schema)
        .iter()
        .map(|&j| mean_attention[j])
        .sum();
    let hidden_forest: f32 = full
        .unknown_relative_to(&ctx.train_schema)
        .iter()
        .map(|&j| forest_importance[j])
        .sum();
    println!(
        "Mass on hidden-landmark features: attention {:.1}% vs forest {:.1}% — the gap the ensemble exploits.",
        hidden_attention * 100.0,
        hidden_forest * 100.0
    );
    json_out(
        "importance",
        &json!({
            "rho_known": rho_known,
            "rho_all": rho_all,
            "attention_hidden_mass": hidden_attention,
            "forest_hidden_mass": hidden_forest,
        }),
    );
}
