//! Golden-row regression for the backend refactor: at a fixed seed, the
//! per-model experiment rows (Fig. 5-style recall curves) and the raw
//! ranked-cause scores must be **bit-identical** to what the harness
//! produced before `CauseRanker` became the `Backend` abstraction.
//!
//! The constants below were captured from the pre-refactor harness at
//! `n_scenarios = 30`, `seed = 7`, `DiagNetConfig::fast()` — the same
//! scoring paths, per-sample and batched, must reproduce them exactly.

use diagnet::config::DiagNetConfig;
use diagnet_bench::harness::{eval_samples, EvalSample, ExperimentContext, HarnessConfig};
use diagnet_bench::ModelKind;
use diagnet_bench::TrainedModels;
use diagnet_eval::recall_curve;

struct GoldenRow {
    kind: ModelKind,
    label: &'static str,
    /// Recall@1..=5 bits over faults near hidden landmarks.
    hidden: [u32; 5],
    /// Recall@1..=5 bits over faults near known landmarks.
    known: [u32; 5],
    /// Recall@1..=5 bits over all faulty test samples.
    raw: [u32; 5],
    /// Wrapping sum of the score bits of the first ten samples' full
    /// ranked-cause vectors.
    fingerprint: u32,
}

/// Captured from the pre-refactor harness (see module docs).
const GOLDEN: [GoldenRow; 4] = [
    GoldenRow {
        kind: ModelKind::DiagNet,
        label: "DiagNet",
        hidden: [0x3ded2308, 0x3e21af28, 0x3e6d2308, 0x3e896e7c, 0x3ea1af28],
        known: [0x3f4ccccd, 0x3f6eeeef, 0x3f6eeeef, 0x3f6eeeef, 0x3f6eeeef],
        raw: [0x3e29d58b, 0x3e5bc90e, 0x3e90dbc9, 0x3ea2576a, 0x3eb8d1cc],
        fingerprint: 0x05072389,
    },
    GoldenRow {
        kind: ModelKind::DiagNetGeneral,
        label: "DiagNet (general)",
        hidden: [0x3e3ca1af, 0x3e67bf54, 0x3e840ac7, 0x3e96e7bf, 0x3eaf286c],
        known: [0x3f4ccccd, 0x3f6eeeef, 0x3f800000, 0x3f800000, 0x3f800000],
        raw: [0x3e6ac54f, 0x3e8e5c69, 0x3e9fd80a, 0x3eb153ab, 0x3ec7ce0c],
        fingerprint: 0x03e9aecc,
    },
    GoldenRow {
        kind: ModelKind::Forest,
        label: "Random Forest",
        hidden: [0x3d579436, 0x3d579436, 0x3d579436, 0x3d579436, 0x3d579436],
        known: [0x3f6eeeef, 0x3f6eeeef, 0x3f6eeeef, 0x3f6eeeef, 0x3f6eeeef],
        raw: [0x3defc40f, 0x3defc40f, 0x3defc40f, 0x3defc40f, 0x3defc40f],
        fingerprint: 0x2733aeff,
    },
    GoldenRow {
        kind: ModelKind::NaiveBayes,
        label: "Naive Bayes",
        hidden: [0x3eb73dfb, 0x3ebca1af, 0x3ecccccd, 0x3eda4610, 0x3eed2308],
        known: [0x3ecccccd, 0x3ecccccd, 0x3ecccccd, 0x3ecccccd, 0x3f088889],
        raw: [0x3eb8d1cc, 0x3ebdd08c, 0x3ecccccd, 0x3ed949ae, 0x3eefc40f],
        fingerprint: 0xd2a245bd,
    },
];

fn curve_bits(models: &TrainedModels, kind: ModelKind, subset: &[EvalSample]) -> [u32; 5] {
    let ctx_schema = diagnet_sim::metrics::FeatureSchema::full();
    let curve = recall_curve(&models.score_all(kind, subset, &ctx_schema), 5);
    let mut bits = [0u32; 5];
    for (b, v) in bits.iter_mut().zip(&curve) {
        *b = v.to_bits();
    }
    bits
}

#[test]
fn experiment_rows_are_bit_identical_to_pre_refactor_capture() {
    let ctx = ExperimentContext::create(HarnessConfig {
        n_scenarios: 30,
        seed: 7,
        model_config: DiagNetConfig::fast(),
    });
    let models = TrainedModels::train(&ctx);
    let samples = eval_samples(&ctx);
    let hidden: Vec<EvalSample> = samples.iter().filter(|s| s.near_hidden).cloned().collect();
    let known: Vec<EvalSample> = samples.iter().filter(|s| !s.near_hidden).cloned().collect();
    assert_eq!((samples.len(), hidden.len(), known.len()), (205, 190, 15));

    for row in &GOLDEN {
        assert_eq!(
            curve_bits(&models, row.kind, &hidden),
            row.hidden,
            "{}: hidden-landmark recall curve drifted",
            row.label
        );
        assert_eq!(
            curve_bits(&models, row.kind, &known),
            row.known,
            "{}: known-landmark recall curve drifted",
            row.label
        );
        assert_eq!(
            curve_bits(&models, row.kind, &samples),
            row.raw,
            "{}: combined recall curve drifted",
            row.label
        );
        // Raw ranked-cause scores, not just derived recall numbers.
        let fingerprint = samples[..10]
            .iter()
            .flat_map(|s| models.scores(row.kind, s, &ctx.full_schema))
            .fold(0u32, |acc, v| acc.wrapping_add(v.to_bits()));
        assert_eq!(
            fingerprint, row.fingerprint,
            "{}: ranked-cause score fingerprint drifted",
            row.label
        );
    }
}
